// Ablation A: Pair-HMM kernel throughput (google-benchmark).
//
// Measures DP cells/second for the forward/backward marginal alignment, the
// Viterbi decoder, and the Needleman-Wunsch baseline across read lengths,
// plus the marginal condensation and the quantized accumulator adds.  These
// kernels dominate the pipeline's compute, so the Figure 4/5 rates trace
// back to these numbers.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/phmm/batched.hpp"
#include "gnumap/phmm/forward_backward.hpp"
#include "gnumap/phmm/marginal.hpp"
#include "gnumap/phmm/nw.hpp"
#include "gnumap/phmm/viterbi.hpp"
#include "gnumap/util/rng.hpp"

namespace {

using namespace gnumap;

struct Fixture {
  Read read;
  std::vector<std::uint8_t> window;
  Pwm pwm;

  explicit Fixture(std::size_t read_len) {
    Rng rng(4242);
    std::string window_seq;
    const std::size_t window_len = read_len + 24;
    for (std::size_t j = 0; j < window_len; ++j) {
      window_seq += "ACGT"[rng.next_below(4)];
    }
    read.name = "bench";
    read.bases = encode_sequence(window_seq.substr(12, read_len));
    read.quals.assign(read_len, 35);
    // Sprinkle a few errors so the DP is not degenerate.
    for (std::size_t i = 0; i < read_len; i += 17) {
      read.bases[i] = static_cast<std::uint8_t>((read.bases[i] + 1) % 4);
    }
    window = encode_sequence(window_seq);
    pwm = Pwm::from_read(read);
  }

  std::size_t cells() const {
    return (read.length() + 1) * (window.size() + 1);
  }
};

void BM_ForwardBackward(benchmark::State& state) {
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  const PairHmm hmm((PhmmParams()));
  AlignmentMatrices mats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.align(fx.pwm, fx.window, mats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.cells()));
  state.counters["cells"] = static_cast<double>(fx.cells());
}
BENCHMARK(BM_ForwardBackward)->Arg(36)->Arg(62)->Arg(100)->Arg(150);

/// Shared harness for the batched benchmarks: drains a batch of fixtures
/// through the engine, accumulates kernel timings and cell counts across
/// iterations, and reports GCUPS (useful DP cells per kernel second / 1e9,
/// docs/KERNELS.md §9) plus lane occupancy (useful / swept cells).
/// Mirrors the numbers into the metrics registry so a --metrics-out export
/// carries the BENCH_phmm.json series under the shared schema.
void run_batched(benchmark::State& state, const std::vector<Fixture>& fixtures,
                 phmm::SimdLevel level, phmm::Precision precision,
                 std::size_t bin_slack, const std::string& series) {
  phmm::BatchedForward batch((PhmmParams()), BoundaryMode::kSemiGlobal,
                             phmm::EngineOptions{.simd = level,
                                                 .precision = precision,
                                                 .bin_slack = bin_slack});
  // Drain mode, as the mapper uses it: each pack's matrices are recycled
  // from a hot pool and handed to the consumer — the analogue of the
  // scalar loop reusing one AlignmentMatrices.
  double sink = 0.0;
  const auto consume = [&](std::size_t task) {
    sink += batch.matrices(task).log_likelihood;
  };
  phmm::KernelTimings total;
  for (auto _ : state) {
    batch.clear();  // also resets timings: accumulate them per iteration
    for (const Fixture& fx : fixtures) batch.add(fx.pwm, fx.window);
    batch.run(consume);
    total += batch.timings();
    benchmark::DoNotOptimize(sink);
  }
  const double kernel_seconds = total.forward_seconds + total.backward_seconds;
  const double gcups =
      kernel_seconds > 0.0
          ? static_cast<double>(total.cells) / kernel_seconds / 1e9
          : 0.0;
  const double occupancy =
      total.swept_cells > 0
          ? static_cast<double>(total.cells) /
                static_cast<double>(total.swept_cells)
          : 0.0;
  const std::string labels = "{" + series + "}";
  obs::registry()
      .gauge("gnumap_bench_phmm_forward_seconds" + labels,
             "Total forward-sweep kernel seconds over all iterations")
      .set(total.forward_seconds);
  obs::registry()
      .gauge("gnumap_bench_phmm_backward_seconds" + labels,
             "Total backward-sweep kernel seconds over all iterations")
      .set(total.backward_seconds);
  obs::registry()
      .gauge("gnumap_bench_phmm_gcups" + labels,
             "Useful DP cells per kernel-second / 1e9 (docs/KERNELS.md §9)")
      .set(gcups);
  std::size_t batch_cells = 0;
  for (const Fixture& fx : fixtures) batch_cells += fx.cells();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_cells));
  state.counters["cells"] = static_cast<double>(batch_cells);
  state.counters["gcups"] = gcups;
  state.counters["lane_occupancy"] = occupancy;
  state.SetLabel(std::string(phmm::simd_level_name(level)) + "/" +
                 phmm::precision_name(precision));
}

/// Batched SIMD engine over a 32-task batch of identical-length reads.
/// range(0) = read length, range(1) = SimdLevel (0 scalar / 1 sse2 /
/// 2 avx2), range(2) = lane precision (0 fp64 / 1 fp32).  Compare cells/s
/// ("items") against BM_ForwardBackward at the same read length for the
/// batching + vectorization speedup; the fp64 rows are bit-identical
/// across levels, so that axis is a pure throughput knob, while fp32
/// doubles the lane count at ~1e-5 relative score error (KERNELS.md §8).
void BM_BatchedForwardBackward(benchmark::State& state) {
  const auto level = static_cast<phmm::SimdLevel>(state.range(1));
  if (phmm::resolve_simd_level(level) != level) {
    state.SkipWithError("SIMD level not supported on this host");
    return;
  }
  const auto precision = state.range(2) == 0 ? phmm::Precision::kDouble
                                             : phmm::Precision::kSingle;
  constexpr std::size_t kBatch = 32;
  // Distinct fixtures per slot so lanes carry independent problems, as in
  // the mapper (every candidate window differs).
  std::vector<Fixture> fixtures;
  fixtures.reserve(kBatch);
  for (std::size_t t = 0; t < kBatch; ++t) {
    fixtures.emplace_back(static_cast<std::size_t>(state.range(0)));
  }
  const std::string series = std::string("level=\"") +
                             phmm::simd_level_name(level) + "\",prec=\"" +
                             phmm::precision_name(precision) +
                             "\",read_len=\"" +
                             std::to_string(state.range(0)) + "\"";
  run_batched(state, fixtures, level, precision, phmm::kDefaultBinSlack,
              series);
}
BENCHMARK(BM_BatchedForwardBackward)
    ->ArgsProduct({{36, 62, 100, 150}, {0, 1, 2}, {0, 1}});

/// The length-binned scheduler on a mapper-realistic mixed batch: 32 tasks
/// whose read lengths cycle over 36..62 bp.  range(0) = SimdLevel,
/// range(1) = precision, range(2) = binning (0 = slack 0, i.e. the
/// identical-shapes-only packing; 1 = default slack).  With binning off,
/// every length change breaks the pack and lanes go idle; the
/// lane_occupancy counter shows how much of the sweep was useful either
/// way.  Results are bit-identical across all four fp64 variants.
void BM_BatchedMixedLength(benchmark::State& state) {
  const auto level = static_cast<phmm::SimdLevel>(state.range(0));
  if (phmm::resolve_simd_level(level) != level) {
    state.SkipWithError("SIMD level not supported on this host");
    return;
  }
  const auto precision = state.range(1) == 0 ? phmm::Precision::kDouble
                                             : phmm::Precision::kSingle;
  const std::size_t bin_slack =
      state.range(2) == 0 ? 0 : phmm::kDefaultBinSlack;
  constexpr std::size_t kBatch = 32;
  std::vector<Fixture> fixtures;
  fixtures.reserve(kBatch);
  for (std::size_t t = 0; t < kBatch; ++t) {
    fixtures.emplace_back(36 + (t * 7) % 27);  // 36..62 bp, shuffled order
  }
  const std::string series = std::string("level=\"") +
                             phmm::simd_level_name(level) + "\",prec=\"" +
                             phmm::precision_name(precision) +
                             "\",binning=\"" +
                             (bin_slack == 0 ? "off" : "on") +
                             "\",read_len=\"mixed\"";
  run_batched(state, fixtures, level, precision, bin_slack, series);
}
BENCHMARK(BM_BatchedMixedLength)->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}});

void BM_MarginalCondense(benchmark::State& state) {
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  const PairHmm hmm((PhmmParams()));
  AlignmentMatrices mats;
  hmm.align(fx.pwm, fx.window, mats);
  const MarginalOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(condense_marginals(hmm, fx.pwm, mats, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.cells()));
}
BENCHMARK(BM_MarginalCondense)->Arg(62);

void BM_Viterbi(benchmark::State& state) {
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  const PairHmm hmm((PhmmParams()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(viterbi_align(hmm, fx.pwm, fx.window));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.cells()));
}
BENCHMARK(BM_Viterbi)->Arg(62);

void BM_NeedlemanWunsch(benchmark::State& state) {
  const Fixture fx(static_cast<std::size_t>(state.range(0)));
  const NwParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nw_align(fx.read, fx.window, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.cells()));
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(62);

void BM_AccumulatorAdd(benchmark::State& state) {
  const auto kind = static_cast<AccumKind>(state.range(0));
  const auto accum = make_accumulator(kind, 0, 4096);
  Rng rng(7);
  TrackVector delta{0.9f, 0.05f, 0.03f, 0.01f, 0.01f};
  std::uint64_t pos = 0;
  for (auto _ : state) {
    accum->add(pos, delta);
    pos = (pos + 61) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(accum_kind_name(kind));
}
BENCHMARK(BM_AccumulatorAdd)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

// Ablation D: cost-model sensitivity for the Figure 4 curves.
//
// Figure 4's shape depends on the assumed network constants.  This ablation
// reruns both distributed modes once (collecting real communication volumes
// and measured compute), then replays the cost model across a grid of
// latency (alpha) and bandwidth (beta) values.  Expected: the qualitative
// ordering (shared-genome above spread-memory) is robust across two orders
// of magnitude in either constant; only the crossover-free gap narrows on
// an infinitely fast network.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/core/dist_modes.hpp"
#include "gnumap/mpsim/cost_model.hpp"
#include "gnumap/obs/obs_cli.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  WorkloadOptions options;
  options.genome_length = 300'000;
  options.coverage = 4.0;
  if (argc > 1) options.genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Ablation: cost-model sensitivity (8 nodes) ===\n");
  const Workload w = make_workload(options);
  const PipelineConfig config = default_pipeline_config();
  const HashIndex shared_index(w.reference, config.index);

  DistOptions dist_options;
  dist_options.ranks = 8;
  dist_options.serialize_compute = true;

  dist_options.mode = DistMode::kReadPartition;
  const auto shared =
      run_distributed(w.reference, w.reads, config, dist_options,
                      &shared_index);
  dist_options.mode = DistMode::kGenomePartition;
  const auto spread = run_distributed(w.reference, w.reads, config,
                                      dist_options);

  const double reads = static_cast<double>(w.reads.size());
  std::printf("genome %.2f Mbp | %zu reads | comm volumes measured once, "
              "model replayed\n\n",
              static_cast<double>(options.genome_length) / 1e6,
              w.reads.size());

  print_rule();
  std::printf("%12s %14s %18s %18s %8s\n", "alpha", "beta", "shared (seq/s)",
              "spread (seq/s)", "ratio");
  print_rule();
  for (const double alpha : {5e-6, 50e-6, 500e-6}) {
    for (const double beta : {12.5e6, 125e6, 1.25e9}) {
      CostModelParams params;
      params.alpha = alpha;
      params.beta = beta;
      const double shared_rate =
          reads / simulated_makespan(shared.costs, params);
      const double spread_rate =
          reads / simulated_makespan(spread.costs, params);
      std::printf("%10.0fus %11.0fMB/s %18.0f %18.0f %7.2fx\n", alpha * 1e6,
                  beta / 1e6, shared_rate, spread_rate,
                  shared_rate / spread_rate);
    }
  }
  print_rule();
  std::printf("expected: shared/spread ratio > 1 across the whole grid.\n");
  return 0;
}

// Table II reproduction: virtual memory of the accumulation state for the
// three layouts, on chrX-scale (155 Mbp) and whole-human-scale (3.1 Gbp).
//
//   Paper:   NORM      4.76 GB (chrX)   100 GB (human)
//            CHARDISC  2.58 GB          58 GB
//            CENTDISC  2.91 GB          40 GB
//
// The accumulators are *measured* on a bench-sized genome (exact heap bytes)
// and extrapolated analytically from bytes/position; genome + hash-table
// bytes (shared by all layouts) are reported separately.  Expected shape:
// NORM > CHARDISC > CENTDISC.  (The paper's own chrX column lists CENTDISC
// above CHARDISC, contradicting its Table III for the same setup — our
// layout arithmetic matches the Table III ordering.)
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/accum/accumulator.hpp"
#include "gnumap/accum/codebook.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/util/string_util.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  WorkloadOptions options;
  options.genome_length = 1'000'000;
  options.coverage = 4.0;  // memory does not depend on coverage
  if (argc > 1) options.genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Table II: memory usage for optimizations ===\n");
  const Workload w = make_workload(options);
  const std::uint64_t positions = w.reference.padded_size();

  HashIndexOptions index_options;  // k = 10, the paper's default
  const HashIndex index(w.reference, index_options);

  constexpr std::uint64_t kChrX = 155'000'000ull;
  constexpr std::uint64_t kHuman = 3'100'000'000ull;

  print_rule();
  std::printf("%-10s %16s %14s %14s %14s\n", "layout", "bytes/position",
              "measured", "chrX 155Mbp", "human 3.1Gbp");
  print_rule();
  for (const auto kind :
       {AccumKind::kNorm, AccumKind::kCharDisc, AccumKind::kCentDisc}) {
    const auto accum = make_accumulator(kind, 0, positions);
    const double bpp = accum->bytes_per_position();
    const std::uint64_t fixed =
        kind == AccumKind::kCentDisc
            ? CentroidCodebook::instance().memory_bytes()
            : 0;
    std::printf("%-10s %16.1f %14s %14s %14s\n", accum_kind_name(kind), bpp,
                format_bytes(accum->memory_bytes() + fixed).c_str(),
                format_bytes(static_cast<std::uint64_t>(bpp * kChrX) + fixed)
                    .c_str(),
                format_bytes(static_cast<std::uint64_t>(bpp * kHuman) + fixed)
                    .c_str());
  }
  print_rule();
  std::printf("shared state (all layouts): genome %s + hash table %s "
              "(measured at %.2f Mbp, k=%d)\n",
              format_bytes(positions).c_str(),
              format_bytes(index.memory_bytes()).c_str(),
              static_cast<double>(options.genome_length) / 1e6,
              index.k());
  // The hash table's positions array scales linearly with the genome; the
  // 4^k offsets array is fixed.  Extrapolate for the paper scales.
  const std::uint64_t per_base_index =
      index.num_entries() * sizeof(GenomePos) / positions + 1;
  std::printf("hash table extrapolation: chrX ~%s, human ~%s\n",
              format_bytes(per_base_index * kChrX + (1ull << 23)).c_str(),
              format_bytes(per_base_index * kHuman + (1ull << 23)).c_str());
  std::printf("paper: NORM 4.76g/100g, CHARDISC 2.58g/58g, "
              "CENTDISC 2.91g/40g\n");
  return 0;
}

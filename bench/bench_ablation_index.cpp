// Ablation B: genomic hash table and seeding (google-benchmark).
//
// Sweeps the mer size k around the paper's default (k=10) and the seeding
// step, measuring index build throughput, lookup cost, and per-read
// candidate counts.  Larger k -> fewer, more specific candidates (cheaper
// downstream PHMM work) but less mismatch tolerance.
#include <benchmark/benchmark.h>

#include <string>

#include "gnumap/index/hash_index.hpp"
#include "gnumap/index/seeder.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/rng.hpp"

namespace {

using namespace gnumap;

const Genome& bench_genome() {
  static const Genome genome = [] {
    ReferenceGenOptions options;
    options.length = 500'000;
    options.repeat_fraction = 0.03;
    return generate_reference(options);
  }();
  return genome;
}

const std::vector<SimulatedRead>& bench_reads() {
  static const std::vector<SimulatedRead> reads = [] {
    ReadSimOptions options;
    options.coverage = 0.5;
    return simulate_reads(bench_genome(), options);
  }();
  return reads;
}

void BM_IndexBuild(benchmark::State& state) {
  HashIndexOptions options;
  options.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const HashIndex index(bench_genome(), options);
    benchmark::DoNotOptimize(index.num_entries());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bench_genome().num_bases()));
}
BENCHMARK(BM_IndexBuild)->Arg(8)->Arg(10)->Arg(12);

void BM_SeederCandidates(benchmark::State& state) {
  HashIndexOptions index_options;
  index_options.k = static_cast<int>(state.range(0));
  const HashIndex index(bench_genome(), index_options);
  SeederOptions seeder_options;
  seeder_options.step = static_cast<int>(state.range(1));
  const Seeder seeder(index, seeder_options);
  const auto& reads = bench_reads();

  std::size_t r = 0;
  std::uint64_t total_candidates = 0;
  std::uint64_t seeded_reads = 0;
  for (auto _ : state) {
    const auto candidates = seeder.candidates(reads[r].read);
    total_candidates += candidates.size();
    ++seeded_reads;
    r = (r + 1) % reads.size();
    benchmark::DoNotOptimize(candidates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["cand/read"] =
      static_cast<double>(total_candidates) /
      static_cast<double>(seeded_reads ? seeded_reads : 1);
}
BENCHMARK(BM_SeederCandidates)
    ->Args({8, 2})
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({12, 2});

void BM_IndexLookup(benchmark::State& state) {
  HashIndexOptions options;
  options.k = 10;
  const HashIndex index(bench_genome(), options);
  Rng rng(33);
  for (auto _ : state) {
    const Kmer kmer = rng.next_u64() & ((Kmer{1} << 20) - 1);
    benchmark::DoNotOptimize(index.lookup(kmer).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexLookup);

}  // namespace

// Ablation F: repeat regions — the paper's headline qualitative claim.
//
// "Our results show that GNUMAP-SNP has both high sensitivity and high
//  specificity throughout the genome, which is especially true in repeat
//  regions or in areas with low read coverage."
//
// Setup: a genome whose repeat content is swept from 0% to 30% (2 kbp
// blocks at 0.5% divergence — young repeats; older, more divergent copies
// are easy for any mapper).  SNPs are planted genome-wide; reads from
// repeat copies map near-ambiguously.  Compared callers:
//   * GNUMAP-SNP (marginal alignment: ambiguous reads split their weight)
//   * MAQ-like, drop multimapped (reads with low mapQ discarded)
//   * MAQ-like, random-assign (ambiguous reads placed at a random tie)
// Expected: all three are comparable at 0% repeats; as repeat content
// grows, the baseline's recall decays markedly faster than GNUMAP-SNP's.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/baseline/maq_like.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/obs/obs_cli.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  std::uint64_t genome_length = 250'000;
  if (argc > 1) genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Ablation: accuracy vs repeat content ===\n");
  std::printf("genome %.2f Mbp | 12x coverage | recall%% / precision%%\n\n",
              static_cast<double>(genome_length) / 1e6);

  print_rule();
  std::printf("%8s %22s %22s %22s\n", "repeats", "GNUMAP-SNP",
              "MAQ-like (drop)", "MAQ-like (random)");
  print_rule();
  for (const double repeat_fraction : {0.0, 0.1, 0.2, 0.3}) {
    WorkloadOptions options;
    options.genome_length = genome_length;
    options.repeat_fraction = repeat_fraction;
    options.repeat_divergence = 0.005;
    const Workload w = make_workload(options);

    PipelineConfig gnumap_config = default_pipeline_config();
    gnumap_config.seeder.max_candidates = 24;  // bound repeat-read cost
    // Evidence from multireads arrives fractionally, so in-repeat sites sit
    // lower on the LRT scale; alpha=1e-2 keeps them while still costing no
    // precision (see the alpha sweep in bench_ablation_coverage: even
    // alpha=0.1 produces zero false positives on this error model — the
    // background comparison is doing the filtering, not the cutoff).
    gnumap_config.alpha = 1e-2;
    const auto gnumap_result =
        run_pipeline(w.reference, w.reads, gnumap_config);
    const auto gnumap_eval = evaluate_calls(gnumap_result.calls, w.catalog);

    MaqLikeConfig drop_config;
    drop_config.index.k = 10;
    drop_config.seeder.max_candidates = 24;
    const auto drop = run_maq_like(w.reference, w.reads, drop_config);
    const auto drop_eval = evaluate_calls(drop.calls, w.catalog);

    MaqLikeConfig random_config = drop_config;
    random_config.random_assign_multimapped = true;
    const auto random = run_maq_like(w.reference, w.reads, random_config);
    const auto random_eval = evaluate_calls(random.calls, w.catalog);

    auto cell = [](const EvalResult& e) {
      static char buffer[4][32];
      static int slot = 0;
      slot = (slot + 1) % 4;
      std::snprintf(buffer[slot], sizeof(buffer[slot]), "%5.1f / %5.1f",
                    e.recall() * 100.0, e.precision() * 100.0);
      return buffer[slot];
    };
    std::printf("%7.0f%% %22s %22s %22s\n", repeat_fraction * 100.0,
                cell(gnumap_eval), cell(drop_eval), cell(random_eval));
  }
  print_rule();
  std::printf("expected: GNUMAP-SNP's recall degrades most slowly as "
              "repeat content grows.\n");
  return 0;
}

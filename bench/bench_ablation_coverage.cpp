// Ablation C: sensitivity/precision vs coverage and vs the alpha cutoff.
//
// The paper motivates the LRT cutoff as "straightforward SNP calling
// cutoffs based on a p-value cutoff or a false discovery control" and notes
// SNPs "must often be called from as few as 5-20 overlapping reads".  This
// ablation quantifies both claims on the reproduction:
//   (a) recall/precision of GNUMAP-SNP across 4-40x coverage (the optimal
//       resequencing depth range the paper cites is 10-40x);
//   (b) an alpha sweep at fixed coverage — the ROC the p-value knob traces,
//       including the monoploid vs diploid LRT and the FDR mode.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/obs/obs_cli.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  WorkloadOptions base;
  base.genome_length = 250'000;
  if (argc > 1) base.genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Ablation: coverage sweep ===\n");
  print_rule();
  std::printf("%10s %8s %8s %8s %8s\n", "coverage", "TP", "FP", "recall",
              "precision");
  print_rule();
  for (const double coverage : {4.0, 8.0, 12.0, 20.0, 30.0, 40.0}) {
    WorkloadOptions options = base;
    options.coverage = coverage;
    const Workload w = make_workload(options);
    const auto result =
        run_pipeline(w.reference, w.reads, default_pipeline_config());
    const auto eval = evaluate_calls(result.calls, w.catalog);
    std::printf("%9.0fx %8llu %8llu %7.1f%% %7.1f%%\n", coverage,
                static_cast<unsigned long long>(eval.tp),
                static_cast<unsigned long long>(eval.fp),
                eval.recall() * 100.0, eval.precision() * 100.0);
  }
  print_rule();
  std::printf("expected: recall rises steeply to ~12x then saturates; "
              "precision stays high throughout.\n\n");

  std::printf("=== Ablation: alpha cutoff sweep (12x) ===\n");
  WorkloadOptions options = base;
  const Workload w = make_workload(options);
  print_rule();
  std::printf("%12s %8s %8s %8s %8s\n", "alpha", "TP", "FP", "recall",
              "precision");
  print_rule();
  for (const double alpha : {1e-1, 1e-2, 1e-3, 1e-4, 1e-6, 1e-9}) {
    PipelineConfig config = default_pipeline_config();
    config.alpha = alpha;
    const auto result = run_pipeline(w.reference, w.reads, config);
    const auto eval = evaluate_calls(result.calls, w.catalog);
    std::printf("%12.0e %8llu %8llu %7.1f%% %7.1f%%\n", alpha,
                static_cast<unsigned long long>(eval.tp),
                static_cast<unsigned long long>(eval.fp),
                eval.recall() * 100.0, eval.precision() * 100.0);
  }
  print_rule();

  std::printf("\n=== Ablation: decision rules at 12x ===\n");
  print_rule();
  std::printf("%-28s %8s %8s %8s %8s\n", "rule", "TP", "FP", "recall",
              "precision");
  print_rule();
  struct Rule {
    const char* name;
    Ploidy ploidy;
    bool fdr;
  };
  const Rule rules[] = {
      {"monoploid, alpha=1e-4", Ploidy::kMonoploid, false},
      {"diploid,   alpha=1e-4", Ploidy::kDiploid, false},
      {"monoploid, BH-FDR q=0.05", Ploidy::kMonoploid, true},
  };
  for (const auto& rule : rules) {
    PipelineConfig config = default_pipeline_config();
    config.ploidy = rule.ploidy;
    config.use_fdr = rule.fdr;
    const auto result = run_pipeline(w.reference, w.reads, config);
    const auto eval = evaluate_calls(result.calls, w.catalog);
    std::printf("%-28s %8llu %8llu %7.1f%% %7.1f%%\n", rule.name,
                static_cast<unsigned long long>(eval.tp),
                static_cast<unsigned long long>(eval.fp),
                eval.recall() * 100.0, eval.precision() * 100.0);
  }
  print_rule();
  return 0;
}

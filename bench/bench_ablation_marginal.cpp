// Ablation E: the marginal-alignment design choices, on a workload built to
// separate them.
//
// The paper's central methodological claims: integrating base quality into
// the emissions (the PWM extension) and marginalizing over *all*
// high-scoring alignments beat committing to called bases / one alignment —
// "especially ... in repeat regions".  Divergent repeats already
// disambiguate placement, so this bench constructs the hard case directly:
// a genome with PERFECT two-copy repeats and a SNP inside one copy of each.
//
// Reads covering such a SNP map ambiguously (posterior ~0.5 per copy), so
// each copy accumulates ~half alt + ~half ref evidence — a het-looking
// signal at both copies.  The diploid LRT (used for every variant here)
// still fires on that signal, so the marginal variants *detect* the
// variant (at both copies — localization inside a perfect repeat is
// information-theoretically impossible).  "Single best site" keeps a site
// only above 0.5 posterior: perfect ties are dropped, the evidence never
// lands anywhere, and the in-repeat SNPs vanish — the failure mode the
// paper attributes to single-alignment pipelines.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/util/rng.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  std::uint64_t unique_span = 200'000;
  if (argc > 1) unique_span = std::strtoull(argv[1], nullptr, 10);

  // Genome layout: [copyA1..A4][unique][copyB1..B4], copyBi == copyAi.
  Rng rng(555);
  const std::size_t kCopies = 4;
  const std::size_t kBlock = 2000;
  std::vector<std::string> blocks;
  for (std::size_t b = 0; b < kCopies; ++b) {
    std::string block;
    for (std::size_t i = 0; i < kBlock; ++i) block += "ACGT"[rng.next_below(4)];
    blocks.push_back(std::move(block));
  }
  std::string unique;
  for (std::uint64_t i = 0; i < unique_span; ++i) {
    unique += "ACGT"[rng.next_below(4)];
  }
  std::string sequence;
  for (const auto& block : blocks) sequence += block;
  sequence += unique;
  for (const auto& block : blocks) sequence += block;
  Genome reference;
  reference.add_contig("chrSim", sequence);
  const std::uint64_t repeat_head = kCopies * kBlock;

  // Catalog: one SNP mid-block in each first copy, plus matched unique SNPs.
  SnpCatalog catalog;
  auto plant = [&](std::uint64_t pos) {
    CatalogEntry entry;
    entry.contig = "chrSim";
    entry.position = pos;
    entry.ref = reference.at(pos);
    if (entry.ref >= 4) return;
    entry.alt = static_cast<std::uint8_t>(entry.ref ^ 2);
    catalog.push_back(entry);
  };
  for (std::size_t b = 0; b < kCopies; ++b) {
    plant(b * kBlock + kBlock / 2);
  }
  const std::size_t in_repeat = catalog.size();
  for (std::size_t s = 0; s < kCopies; ++s) {
    plant(repeat_head + (s + 1) * unique_span / (kCopies + 1));
  }
  const Genome individual = apply_catalog(reference, catalog);

  ReadSimOptions sim_options;
  sim_options.coverage = 16.0;
  sim_options.seed = 556;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  std::printf("=== Ablation: marginal-alignment design choices ===\n");
  std::printf("genome %.2f Mbp with %zu perfect 2-copy repeat blocks | "
              "%zu reads at 16x | %zu SNPs in repeats + %zu unique | "
              "diploid LRT\n\n",
              static_cast<double>(sequence.size()) / 1e6, kCopies,
              reads.size(), in_repeat, catalog.size() - in_repeat);

  struct Variant {
    const char* name;
    ProbMode prob_mode;
    Normalization normalization;
    double min_site_posterior;
  };
  const Variant variants[] = {
      {"pwm + raw mass (default)", ProbMode::kPwmWeighted,
       Normalization::kRawMass, 1e-3},
      {"called-base indicator", ProbMode::kCalledBase,
       Normalization::kRawMass, 1e-3},
      {"pwm + column normalized", ProbMode::kPwmWeighted,
       Normalization::kColumn, 1e-3},
      {"single best site only", ProbMode::kPwmWeighted,
       Normalization::kRawMass, 0.51},
  };

  const SnpCatalog repeat_truth(
      catalog.begin(), catalog.begin() + static_cast<std::ptrdiff_t>(in_repeat));
  const SnpCatalog unique_truth(
      catalog.begin() + static_cast<std::ptrdiff_t>(in_repeat), catalog.end());

  print_rule();
  std::printf("%-28s %16s %16s %12s\n", "variant", "repeat recall",
              "unique recall", "other calls");
  print_rule();
  for (const auto& variant : variants) {
    PipelineConfig config = default_pipeline_config();
    config.ploidy = Ploidy::kDiploid;
    config.marginal.prob_mode = variant.prob_mode;
    config.marginal.normalization = variant.normalization;
    config.min_site_posterior = variant.min_site_posterior;
    const auto result = run_pipeline(reference, reads, config);
    const auto repeat_eval = evaluate_calls(result.calls, repeat_truth);
    const auto unique_eval = evaluate_calls(result.calls, unique_truth);
    // Calls matching neither truth subset: dominated by the mirrored copy
    // of each in-repeat SNP (genuinely ambiguous evidence).
    const std::uint64_t other =
        result.calls.size() - repeat_eval.tp - unique_eval.tp;
    std::printf("%-28s %15.1f%% %15.1f%% %12llu\n", variant.name,
                repeat_eval.recall() * 100.0, unique_eval.recall() * 100.0,
                static_cast<unsigned long long>(other));
  }
  print_rule();
  std::printf("expected: every variant recovers the unique SNPs; the "
              "marginal variants also detect the in-repeat SNPs (mirrored "
              "onto both copies — localization inside a perfect repeat is "
              "impossible), while single-best-site drops the tied reads and "
              "loses them entirely.\n");
  return 0;
}

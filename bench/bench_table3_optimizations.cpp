// Table III reproduction: memory, wall clock, and accuracy for a SNP-calling
// run under each memory optimization.
//
//   Paper (chrX, subset of the Table I reads, 30 machines):
//     NORM      4.76GB  04:25:55   TP 1309  FP 127    91%
//     CHARDISC  2.58GB  04:36:58   TP 677   FP 0      100%
//     CENTDISC  2.01GB  04:27:29   TP 166   FP 9058   0.08%
//
// Expected shape: all three take about the same time; CHARDISC trades
// roughly half the true positives for near-zero false positives (precision
// up); CENTDISC's precision collapses because every add requantizes and the
// rank reduction goes through the equal-weight table.  The run uses 4 mpsim
// ranks in read-partition mode so the reduction path (where CENTDISC loses
// the most) is exercised, like the paper's cluster runs.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/core/dist_modes.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/util/string_util.hpp"
#include "gnumap/util/timer.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  WorkloadOptions options;
  options.genome_length = 1'000'000;
  if (argc > 1) options.genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Table III: memory, wall clock, accuracy per "
              "optimization ===\n");
  const Workload w = make_workload(options);
  std::printf("genome %.2f Mbp | %zu reads | %zu planted SNPs | "
              "4 ranks, read-partition\n\n",
              static_cast<double>(options.genome_length) / 1e6,
              w.reads.size(), w.catalog.size());

  print_rule();
  std::printf("%-12s %12s %10s %7s %7s %10s\n", "Optim.", "MEM", "WT", "TP",
              "FP", "Precision");
  print_rule();
  struct Row {
    const char* name;
    AccumKind kind;
    CentDiscQuantize quantize;
  };
  const Row rows[] = {
      {"NORM", AccumKind::kNorm, CentDiscQuantize::kApproximate},
      {"CHARDISC", AccumKind::kCharDisc, CentDiscQuantize::kApproximate},
      {"CENTDISC", AccumKind::kCentDisc, CentDiscQuantize::kApproximate},
      // Our extension: exact nearest-centroid conversion, not in the paper.
      {"CENTDISC-NN", AccumKind::kCentDisc, CentDiscQuantize::kNearest},
  };
  for (const auto& row : rows) {
    const AccumKind kind = row.kind;
    PipelineConfig config = default_pipeline_config();
    config.accum_kind = kind;
    config.centdisc_quantize = row.quantize;

    DistOptions dist_options;
    dist_options.ranks = 4;
    dist_options.mode = DistMode::kReadPartition;
    dist_options.serialize_compute = false;

    Timer timer;
    const HashIndex index(w.reference, config.index);
    const auto result =
        run_distributed(w.reference, w.reads, config, dist_options, &index);
    const double wall = timer.seconds();
    const auto eval = evaluate_calls(result.calls, w.catalog);

    std::printf("%-12s %12s %10s %7llu %7llu %9.2f%%\n", row.name,
                format_bytes(result.max_rank_accum_bytes).c_str(),
                format_hms(wall).c_str(),
                static_cast<unsigned long long>(eval.tp),
                static_cast<unsigned long long>(eval.fp),
                eval.precision() * 100.0);
    std::printf("%-12s   phmm kernel %.3fs fwd + %.3fs bwd over %llu DP "
                "cells (%s)\n", "",
                result.stats.phmm_forward_seconds,
                result.stats.phmm_backward_seconds,
                static_cast<unsigned long long>(result.stats.dp_cells),
                phmm::simd_level_name(
                    phmm::resolve_simd_level(config.simd)));
  }
  print_rule();
  std::printf("paper: NORM 4.76GB/04:25:55/1309/127/91%% | "
              "CHARDISC 2.58GB/04:36:58/677/0/100%% | "
              "CENTDISC 2.01GB/04:27:29/166/9058/0.08%%\n");
  std::printf("CENTDISC-NN (exact nearest-centroid) is this repo's "
              "extension; the paper only evaluated the approximate "
              "conversion.\n");
  return 0;
}

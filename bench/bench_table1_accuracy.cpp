// Table I reproduction: GNUMAP-SNP vs the MAQ-like baseline on a simulated
// chromosome with planted dbSNP-density SNPs.
//
//   Paper (155 Mbp chrX, 31M 62-bp reads, 12x, 14,501 SNPs):
//     MAQ         990.1 m   TP 11322  FP 830  FN 3179   93.2%
//     GNUMAP-SNP  218.6 m   TP 11070  FP 676  FN 3431   94.2%
//
// This bench runs the identical protocol on a scaled genome (default 2 Mbp,
// override with argv[1]) and prints the same columns.  Expected shape: both
// tools call the large majority of planted SNPs at >=90% precision, with
// comparable accuracy; absolute times differ (host, genome size).
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/baseline/maq_like.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/util/timer.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  WorkloadOptions options;
  if (argc > 1) options.genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Table I: accuracy on simulated data ===\n");
  const Workload w = make_workload(options);
  std::printf("genome %.2f Mbp | %zu reads x %u bp | %.1fx coverage | "
              "%zu planted SNPs (paper: 155 Mbp, 31M reads, 14,501 SNPs)\n\n",
              static_cast<double>(options.genome_length) / 1e6,
              w.reads.size(), kPaperReadLength, options.coverage,
              w.catalog.size());

  // --- MAQ-like baseline ---
  Timer timer;
  MaqLikeConfig maq_config;
  maq_config.index.k = 10;
  const auto maq = run_maq_like(w.reference, w.reads, maq_config);
  const double maq_minutes = timer.seconds() / 60.0;
  const auto maq_eval = evaluate_calls(maq.calls, w.catalog);

  // --- GNUMAP-SNP ---
  timer.reset();
  const auto gnumap_result =
      run_pipeline(w.reference, w.reads, default_pipeline_config());
  const double gnumap_minutes = timer.seconds() / 60.0;
  const auto gnumap_eval = evaluate_calls(gnumap_result.calls, w.catalog);

  print_rule();
  std::printf("%-12s %10s %7s %7s %7s %10s\n", "Program", "Time (m)", "TP",
              "FP", "FN", "Precision");
  print_rule();
  std::printf("%-12s %10.2f %7llu %7llu %7llu %9.1f%%\n", "MAQ-like",
              maq_minutes, static_cast<unsigned long long>(maq_eval.tp),
              static_cast<unsigned long long>(maq_eval.fp),
              static_cast<unsigned long long>(maq_eval.fn),
              maq_eval.precision() * 100.0);
  std::printf("%-12s %10.2f %7llu %7llu %7llu %9.1f%%\n", "GNUMAP-SNP",
              gnumap_minutes, static_cast<unsigned long long>(gnumap_eval.tp),
              static_cast<unsigned long long>(gnumap_eval.fp),
              static_cast<unsigned long long>(gnumap_eval.fn),
              gnumap_eval.precision() * 100.0);
  print_rule();
  std::printf("paper:     MAQ 990.1m 11322/830/3179 93.2%% | "
              "GNUMAP-SNP 218.6m 11070/676/3431 94.2%%\n");
  std::printf("recall: MAQ-like %.1f%%, GNUMAP-SNP %.1f%% "
              "(paper: ~78%% / ~76%%)\n",
              maq_eval.recall() * 100.0, gnumap_eval.recall() * 100.0);
  std::printf("reads mapped: MAQ-like %llu/%llu, GNUMAP-SNP %llu/%llu\n",
              static_cast<unsigned long long>(maq.stats.reads_mapped),
              static_cast<unsigned long long>(maq.stats.reads_total),
              static_cast<unsigned long long>(gnumap_result.stats.reads_mapped),
              static_cast<unsigned long long>(gnumap_result.stats.reads_total));
  return 0;
}

// Figure 5 reproduction: sequences processed per second vs processor count
// for the three accumulation layouts.
//
// The paper plots NORM (no discretization), CHARDISC, and CENTDISC in
// read-partition mode: "Speeds are nearly the same across all
// optimizations, with centroid discretization performing slightly worse."
//
// Runs execute on mpsim with serialized compute turns; rates come from the
// alpha-beta cost model as in Figure 4.  Expected shape: the three curves
// nearly coincide and scale close to linearly; CENTDISC is slightly lowest
// (its adds do a 256-way nearest-centroid search).
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/core/dist_modes.hpp"
#include "gnumap/mpsim/cost_model.hpp"
#include "gnumap/obs/obs_cli.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  WorkloadOptions options;
  options.genome_length = 400'000;
  options.coverage = 6.0;
  options.repeat_fraction = 0.01;  // see the Figure 4 bench
  if (argc > 1) options.genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Figure 5: processing rate per memory optimization ===\n");
  const Workload w = make_workload(options);
  PipelineConfig base_config = default_pipeline_config();
  base_config.seeder.max_candidates = 16;
  const HashIndex shared_index(w.reference, base_config.index);
  std::printf("genome %.2f Mbp | %zu reads | read-partition mode\n\n",
              static_cast<double>(options.genome_length) / 1e6,
              w.reads.size());

  const CostModelParams cost_params;
  const int node_counts[] = {1, 2, 4, 8, 16};

  // Warm caches/pages so the 1-node baselines are not measured cold.
  {
    DistOptions warmup;
    warmup.ranks = 1;
    warmup.serialize_compute = false;
    run_distributed(w.reference, w.reads, base_config, warmup, &shared_index);
  }
  const AccumKind kinds[] = {AccumKind::kNorm, AccumKind::kCharDisc,
                             AccumKind::kCentDisc};

  print_rule();
  std::printf("%6s %18s %18s %18s %10s\n", "nodes", "NORM (seq/s)",
              "CHARDISC (seq/s)", "CENTDISC (seq/s)", "perfect");
  print_rule();

  double base_rate = 0.0;
  for (const int nodes : node_counts) {
    double rates[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      PipelineConfig config = base_config;
      config.accum_kind = kinds[i];
      DistOptions dist_options;
      dist_options.ranks = nodes;
      dist_options.mode = DistMode::kReadPartition;
      dist_options.serialize_compute = true;
      const auto result = run_distributed(w.reference, w.reads, config,
                                          dist_options, &shared_index);
      rates[i] = static_cast<double>(w.reads.size()) /
                 simulated_makespan(result.costs, cost_params);
    }
    if (nodes == 1) base_rate = rates[0];
    std::printf("%6d %18.0f %18.0f %18.0f %10.0f\n", nodes, rates[0],
                rates[1], rates[2], base_rate * nodes);
  }
  print_rule();
  std::printf("paper shape: all three nearly identical and close to linear; "
              "CENTDISC slightly worse on some points.\n");
  return 0;
}

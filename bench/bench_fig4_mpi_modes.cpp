// Figure 4 reproduction: sequence processing rate for the two MPI methods.
//
// The paper plots sequences/second against node count for (a) the
// shared-genome mode (reads partitioned; black line, near the red perfect-
// linear line) and (b) the spread-memory mode (genome partitioned; blue
// line, clearly below).  "Note that the spread memory mode does not process
// as many sequences, so the shared memory mode should be used when
// possible."
//
// On this single-core host the runs execute for real on mpsim (so the
// communication volume is exact and per-rank compute is measured with
// serialized turns); the multi-node rate comes from the alpha-beta cost
// model (see DESIGN.md).  Expected shape: read-partition ~linear,
// genome-partition sub-linear and below at every node count.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "gnumap/core/dist_modes.hpp"
#include "gnumap/mpsim/cost_model.hpp"
#include "gnumap/obs/obs_cli.hpp"

using namespace gnumap;
using namespace gnumap::bench;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  WorkloadOptions options;
  options.genome_length = 400'000;
  options.coverage = 6.0;
  // Keep per-read cost variance low so small shards at high rank counts are
  // not dominated by a few repeat-heavy reads (the paper's shards held ~1M
  // reads each; ours are thousands).
  options.repeat_fraction = 0.01;
  if (argc > 1) options.genome_length = std::strtoull(argv[1], nullptr, 10);

  std::printf("=== Figure 4: sequence processing rate, two MPI methods ===\n");
  const Workload w = make_workload(options);
  PipelineConfig config = default_pipeline_config();
  config.seeder.max_candidates = 16;
  const HashIndex shared_index(w.reference, config.index);
  std::printf("genome %.2f Mbp | %zu reads | cost model: alpha=50us, "
              "beta=1Gbit/s\n\n",
              static_cast<double>(options.genome_length) / 1e6,
              w.reads.size());

  const CostModelParams cost_params;
  const int node_counts[] = {1, 2, 4, 8, 16, 30};

  // Warm caches/pages so the 1-node baseline is not measured cold.
  {
    DistOptions warmup;
    warmup.ranks = 1;
    warmup.serialize_compute = false;
    run_distributed(w.reference, w.reads, config, warmup, &shared_index);
  }

  print_rule();
  std::printf("%6s %28s %28s %10s\n", "nodes", "shared genome (seq/s)",
              "spread memory (seq/s)", "perfect");
  print_rule();

  double base_rate = 0.0;
  for (const int nodes : node_counts) {
    DistOptions dist_options;
    dist_options.ranks = nodes;
    dist_options.serialize_compute = true;

    dist_options.mode = DistMode::kReadPartition;
    const auto shared =
        run_distributed(w.reference, w.reads, config, dist_options,
                        &shared_index);
    const double shared_time = simulated_makespan(shared.costs, cost_params);
    const double shared_rate =
        static_cast<double>(w.reads.size()) / shared_time;

    dist_options.mode = DistMode::kGenomePartition;
    const auto spread =
        run_distributed(w.reference, w.reads, config, dist_options);
    const double spread_time = simulated_makespan(spread.costs, cost_params);
    const double spread_rate =
        static_cast<double>(w.reads.size()) / spread_time;

    if (nodes == 1) base_rate = shared_rate;
    std::printf("%6d %20.0f (%4.1fx) %20.0f (%4.1fx) %9.0f\n", nodes,
                shared_rate, shared_rate / base_rate, spread_rate,
                spread_rate / base_rate, base_rate * nodes);
  }
  print_rule();
  std::printf("paper shape: shared-genome tracks the perfect-linear line; "
              "spread-memory falls below at every node count.\n");
  return 0;
}

// Full resequencing workflow on files, mirroring the paper's simulation
// study end to end:
//
//   1. simulate a reference genome and a dbSNP-style catalog       (sim)
//   2. write reference.fa, truth.catalog, reads.fastq              (io)
//   3. read everything back from disk, as a real user would
//   4. map + call SNPs                                             (core)
//   5. evaluate against truth, write calls.tsv and calls.vcf
//
// Usage: resequencing_pipeline [genome_bp] [coverage] [out_dir]
// Defaults: 200000 bp, 12x, a fresh directory under /tmp.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/timer.hpp"

using namespace gnumap;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  const std::uint64_t genome_bp =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  const double coverage = argc > 2 ? std::strtod(argv[2], nullptr) : 12.0;
  const fs::path out_dir =
      argc > 3 ? fs::path(argv[3]) : fs::path("/tmp/gnumap_resequencing");
  fs::create_directories(out_dir);

  // ---- 1. Simulate ----
  ReferenceGenOptions ref_options;
  ref_options.length = genome_bp;
  const Genome reference = generate_reference(ref_options);

  CatalogGenOptions catalog_options;
  catalog_options.count = std::max<std::uint64_t>(10, genome_bp / 10'600);
  const SnpCatalog truth = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, truth);

  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  // ---- 2. Write inputs to disk ----
  std::vector<FastaRecord> fasta;
  {
    std::string seq;
    for (std::uint64_t i = 0; i < reference.contig_size(0); ++i) {
      seq += decode_base(reference.at(i));
    }
    fasta.emplace_back(reference.contig_name(0), std::move(seq));
  }
  write_fasta_file((out_dir / "reference.fa").string(), fasta);
  write_catalog_file((out_dir / "truth.catalog").string(), truth);
  write_fastq_file((out_dir / "reads.fastq").string(), reads);
  std::printf("wrote %s/{reference.fa, truth.catalog, reads.fastq}\n",
              out_dir.c_str());

  // ---- 3. Load back from disk ----
  const Genome loaded_reference =
      genome_from_fasta_file((out_dir / "reference.fa").string());
  const auto loaded_reads =
      read_fastq_file((out_dir / "reads.fastq").string());
  const auto loaded_truth =
      read_catalog_file((out_dir / "truth.catalog").string());
  std::printf("loaded %.2f Mbp reference, %zu reads, %zu truth SNPs\n",
              static_cast<double>(loaded_reference.num_bases()) / 1e6,
              loaded_reads.size(), loaded_truth.size());

  // ---- 4. Map + call ----
  PipelineConfig config;
  config.index.k = 10;
  config.alpha = 1e-4;
  Timer timer;
  const PipelineResult result =
      run_pipeline(loaded_reference, loaded_reads, config);
  std::printf("pipeline: index %.2fs, map %.2fs, call %.2fs "
              "(%llu/%llu reads mapped)\n",
              result.index_seconds, result.map_seconds, result.call_seconds,
              static_cast<unsigned long long>(result.stats.reads_mapped),
              static_cast<unsigned long long>(result.stats.reads_total));

  // ---- 5. Evaluate + write calls ----
  const auto eval = evaluate_calls(result.calls, loaded_truth);
  std::printf("calls: %zu | TP %llu FP %llu FN %llu | recall %.1f%% "
              "precision %.1f%%\n",
              result.calls.size(), static_cast<unsigned long long>(eval.tp),
              static_cast<unsigned long long>(eval.fp),
              static_cast<unsigned long long>(eval.fn), eval.recall() * 100.0,
              eval.precision() * 100.0);

  write_snps_tsv_file((out_dir / "calls.tsv").string(), result.calls);
  std::ofstream vcf(out_dir / "calls.vcf");
  write_snps_vcf(vcf, result.calls, "simulated_individual");
  std::printf("wrote %s/{calls.tsv, calls.vcf}\n", out_dir.c_str());
  return eval.recall() > 0.5 ? 0 : 1;
}

// gnumap_eval_cli — score a calls file against a truth catalog.
//
//   gnumap_eval_cli --calls calls.tsv --truth truth.catalog [--no-allele]
//
// Reads the native TSV produced by gnumap_snp_cli / write_snps_tsv and the
// catalog format of gnumap_sim_cli, prints TP/FP/FN, precision, recall, F1
// (the Table I metrics).
#include <cstdio>
#include <fstream>
#include <string>

#include "gnumap/core/evaluation.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/string_util.hpp"

using namespace gnumap;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: %s --calls calls.tsv --truth truth.catalog "
               "[--no-allele]\n",
               argv0);
  std::exit(2);
}

/// Parses the native TSV written by write_snps_tsv.
std::vector<SnpCall> read_calls_tsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open calls file: " + path);
  std::vector<SnpCall> calls;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto text = strip(line);
    if (text.empty() || text[0] == '#') continue;
    const auto fields = split(text, '\t');
    if (fields.size() < 8) {
      throw ParseError("calls line " + std::to_string(line_no) +
                       ": expected 8 tab-separated fields");
    }
    SnpCall call;
    call.contig = std::string(fields[0]);
    call.position = parse_u64(fields[1]);
    call.ref = encode_base(fields[2][0]);
    call.allele1 = encode_base(fields[3][0]);
    call.allele2 = encode_base(fields[4][0]);
    call.coverage = parse_double(fields[5]);
    call.lrt_stat = parse_double(fields[6]);
    call.p_value = parse_double(fields[7]);
    calls.push_back(std::move(call));
  }
  return calls;
}

}  // namespace

int main(int argc, char** argv) {
  obs::strip_cli_flags(argc, argv);
  std::string calls_path, truth_path;
  bool require_allele = true;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--calls") {
        calls_path = need_value(i);
      } else if (arg == "--truth") {
        truth_path = need_value(i);
      } else if (arg == "--no-allele") {
        require_allele = false;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        usage(argv[0], "unknown option: " + arg);
      }
    }
    if (calls_path.empty() || truth_path.empty()) {
      usage(argv[0], "--calls and --truth are required");
    }
    const auto calls = read_calls_tsv(calls_path);
    const auto truth = read_catalog_file(truth_path);
    const auto eval = evaluate_calls(calls, truth, require_allele);

    std::printf("calls: %zu | truth: %zu\n", calls.size(), truth.size());
    std::printf("TP %llu  FP %llu  FN %llu\n",
                static_cast<unsigned long long>(eval.tp),
                static_cast<unsigned long long>(eval.fp),
                static_cast<unsigned long long>(eval.fn));
    std::printf("precision %s  recall %s  F1 %s\n",
                format_percent(eval.precision()).c_str(),
                format_percent(eval.recall()).c_str(),
                format_percent(eval.f1()).c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "gnumap_eval_cli: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnumap_eval_cli: internal error: %s\n", e.what());
    return 1;
  }
}

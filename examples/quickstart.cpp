// Quickstart: map a handful of reads against a toy reference and call SNPs.
//
// Demonstrates the minimal public API surface:
//   Genome -> reads -> PipelineConfig -> run_pipeline -> SnpCall list.
//
// The toy genome carries one planted SNP (A->G at chr1:60); ten error-free
// reads cover it, so the LRT calls exactly that site.
#include <cstdio>
#include <iostream>

#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/util/rng.hpp"

using namespace gnumap;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  // 1. A reference genome.  Real users load FASTA via genome_from_fasta().
  Rng rng(2012);
  std::string sequence;
  for (int i = 0; i < 400; ++i) sequence += "ACGT"[rng.next_below(4)];
  Genome reference;
  reference.add_contig("chr1", sequence);

  // 2. Reads from an individual whose base 60 differs from the reference.
  std::string individual = sequence;
  individual[60] = individual[60] == 'A' ? 'G' : 'A';
  const char expected_alt = individual[60];

  std::vector<Read> reads;
  for (int start = 20; start <= 65; start += 5) {
    Read read;
    read.name = "read_" + std::to_string(start);
    read.bases = encode_sequence(
        std::string_view(individual).substr(static_cast<std::size_t>(start), 62));
    read.quals.assign(62, 40);  // Q40: 0.01% error
    reads.push_back(std::move(read));
  }

  // 3. Configure and run the three-step pipeline (hash -> PHMM -> LRT).
  PipelineConfig config;
  config.index.k = 10;        // the paper's default mer size
  config.alpha = 1e-4;        // SNP-wise false-positive rate
  config.min_coverage = 3.0;  // require a few overlapping reads

  const PipelineResult result = run_pipeline(reference, reads, config);

  // 4. Inspect the calls.
  std::printf("mapped %llu/%llu reads, %zu SNP call(s)\n",
              static_cast<unsigned long long>(result.stats.reads_mapped),
              static_cast<unsigned long long>(result.stats.reads_total),
              result.calls.size());
  write_snps_tsv(std::cout, result.calls);

  if (result.calls.size() == 1 && result.calls[0].position == 60 &&
      decode_base(result.calls[0].allele1) == expected_alt) {
    std::printf("OK: recovered the planted %c>%c SNP at chr1:60\n",
                sequence[60], expected_alt);
    return 0;
  }
  std::printf("unexpected call set\n");
  return 1;
}

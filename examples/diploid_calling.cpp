// Diploid SNP calling: heterozygous and homozygous variants.
//
// Simulates a diploid individual (half the catalog heterozygous), maps
// reads drawn from both haplotypes, and calls with the diploid LRT.  Prints
// the genotype concordance table: how often hom/het truth sites were
// genotyped correctly.
//
// Usage: diploid_calling [genome_bp] [coverage]
#include <cstdio>
#include <cstdlib>

#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"

using namespace gnumap;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  const std::uint64_t genome_bp =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  const double coverage = argc > 2 ? std::strtod(argv[2], nullptr) : 20.0;

  ReferenceGenOptions ref_options;
  ref_options.length = genome_bp;
  const Genome reference = generate_reference(ref_options);

  CatalogGenOptions catalog_options;
  catalog_options.count = std::max<std::uint64_t>(20, genome_bp / 5'000);
  catalog_options.het_fraction = 0.5;
  const auto truth = generate_catalog(reference, catalog_options);
  const auto individual = apply_catalog_diploid(reference, truth);

  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  const auto reads = strip_metadata(
      simulate_reads_diploid(individual.hap1, individual.hap2, sim_options));

  PipelineConfig config;
  config.index.k = 10;
  config.ploidy = Ploidy::kDiploid;
  config.alpha = 1e-4;
  const auto result = run_pipeline(reference, reads, config);
  const auto eval = evaluate_calls(result.calls, truth);

  std::printf("diploid run: %.2f Mbp, %zu reads at %.0fx, %zu truth sites\n",
              static_cast<double>(genome_bp) / 1e6, reads.size(), coverage,
              truth.size());
  std::printf("calls %zu | recall %.1f%% precision %.1f%%\n\n",
              result.calls.size(), eval.recall() * 100.0,
              eval.precision() * 100.0);

  // Genotype concordance.
  int hom_total = 0, hom_called = 0, hom_correct = 0;
  int het_total = 0, het_called = 0, het_correct = 0;
  for (const auto& entry : truth) {
    const bool is_het = entry.zygosity == Zygosity::kHet;
    (is_het ? het_total : hom_total) += 1;
    for (const auto& call : result.calls) {
      if (call.position != entry.position || call.contig != entry.contig) {
        continue;
      }
      const bool has_alt =
          call.allele1 == entry.alt || call.allele2 == entry.alt;
      const bool has_ref =
          call.allele1 == entry.ref || call.allele2 == entry.ref;
      if (is_het) {
        ++het_called;
        het_correct += (has_alt && has_ref) ? 1 : 0;
      } else {
        ++hom_called;
        hom_correct += (has_alt && call.allele1 == call.allele2) ? 1 : 0;
      }
      break;
    }
  }
  std::printf("genotype concordance:\n");
  std::printf("  hom sites: %d truth, %d called, %d genotyped hom-alt\n",
              hom_total, hom_called, hom_correct);
  std::printf("  het sites: %d truth, %d called, %d genotyped ref/alt het\n",
              het_total, het_called, het_correct);
  return (eval.recall() > 0.5) ? 0 : 1;
}

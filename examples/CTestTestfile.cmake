# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_resequencing "/root/repo/examples/resequencing_pipeline" "60000" "12" "/root/repo/example_resequencing_out")
set_tests_properties(example_resequencing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed "/root/repo/examples/distributed_mapping" "3" "60000")
set_tests_properties(example_distributed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diploid "/root/repo/examples/diploid_calling" "60000" "20")
set_tests_properties(example_diploid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_modes "/root/repo/examples/memory_modes" "60000")
set_tests_properties(example_memory_modes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_serve_smoke "sh" "/root/repo/scripts/serve_smoke.sh" "/root/repo/examples/gnumap_sim_cli" "/root/repo/examples/gnumap_snp_cli" "/root/repo/examples/gnumapd" "/root/repo/examples/gnumap_client" "/root/repo/serve_smoke")
set_tests_properties(example_serve_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_serve_drain "sh" "/root/repo/scripts/serve_drain.sh" "/root/repo/examples/gnumap_sim_cli" "/root/repo/examples/gnumap_snp_cli" "/root/repo/examples/gnumapd" "/root/repo/examples/gnumap_client" "/root/repo/serve_drain")
set_tests_properties(example_serve_drain PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_roundtrip "sh" "-c" "\"/root/repo/examples/gnumap_sim_cli\" --out /root/repo/cli_smoke --length 80000 --coverage 10 && \"/root/repo/examples/gnumap_snp_cli\" --ref /root/repo/cli_smoke/reference.fa --reads /root/repo/cli_smoke/reads.fastq --out /root/repo/cli_smoke/calls.tsv --sam /root/repo/cli_smoke/alignments.sam --vcf /root/repo/cli_smoke/calls.vcf --quiet && \"/root/repo/examples/gnumap_eval_cli\" --calls /root/repo/cli_smoke/calls.tsv --truth /root/repo/cli_smoke/truth.catalog")
set_tests_properties(example_cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;46;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/gnumap_eval_cli.dir/gnumap_eval_cli.cpp.o"
  "CMakeFiles/gnumap_eval_cli.dir/gnumap_eval_cli.cpp.o.d"
  "gnumap_eval_cli"
  "gnumap_eval_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_eval_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

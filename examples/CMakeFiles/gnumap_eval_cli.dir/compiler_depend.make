# Empty compiler generated dependencies file for gnumap_eval_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for gnumapd.
# This may be replaced when dependencies are built.

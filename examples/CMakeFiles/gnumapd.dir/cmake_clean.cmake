file(REMOVE_RECURSE
  "CMakeFiles/gnumapd.dir/gnumapd.cpp.o"
  "CMakeFiles/gnumapd.dir/gnumapd.cpp.o.d"
  "gnumapd"
  "gnumapd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumapd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

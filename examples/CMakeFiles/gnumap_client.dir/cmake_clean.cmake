file(REMOVE_RECURSE
  "CMakeFiles/gnumap_client.dir/gnumap_client.cpp.o"
  "CMakeFiles/gnumap_client.dir/gnumap_client.cpp.o.d"
  "gnumap_client"
  "gnumap_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gnumap_client.
# This may be replaced when dependencies are built.

# Empty dependencies file for memory_modes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memory_modes.dir/memory_modes.cpp.o"
  "CMakeFiles/memory_modes.dir/memory_modes.cpp.o.d"
  "memory_modes"
  "memory_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

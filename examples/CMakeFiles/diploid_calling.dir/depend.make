# Empty dependencies file for diploid_calling.
# This may be replaced when dependencies are built.

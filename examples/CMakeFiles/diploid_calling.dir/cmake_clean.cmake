file(REMOVE_RECURSE
  "CMakeFiles/diploid_calling.dir/diploid_calling.cpp.o"
  "CMakeFiles/diploid_calling.dir/diploid_calling.cpp.o.d"
  "diploid_calling"
  "diploid_calling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diploid_calling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for distributed_mapping.
# This may be replaced when dependencies are built.

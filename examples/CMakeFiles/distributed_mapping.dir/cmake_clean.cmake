file(REMOVE_RECURSE
  "CMakeFiles/distributed_mapping.dir/distributed_mapping.cpp.o"
  "CMakeFiles/distributed_mapping.dir/distributed_mapping.cpp.o.d"
  "distributed_mapping"
  "distributed_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gnumap_snp_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gnumap_snp_cli.dir/gnumap_snp_cli.cpp.o"
  "CMakeFiles/gnumap_snp_cli.dir/gnumap_snp_cli.cpp.o.d"
  "gnumap_snp_cli"
  "gnumap_snp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_snp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gnumap_sim_cli.
# This may be replaced when dependencies are built.

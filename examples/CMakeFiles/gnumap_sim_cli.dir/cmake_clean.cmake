file(REMOVE_RECURSE
  "CMakeFiles/gnumap_sim_cli.dir/gnumap_sim_cli.cpp.o"
  "CMakeFiles/gnumap_sim_cli.dir/gnumap_sim_cli.cpp.o.d"
  "gnumap_sim_cli"
  "gnumap_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnumap_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

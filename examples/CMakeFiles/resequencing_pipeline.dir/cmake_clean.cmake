file(REMOVE_RECURSE
  "CMakeFiles/resequencing_pipeline.dir/resequencing_pipeline.cpp.o"
  "CMakeFiles/resequencing_pipeline.dir/resequencing_pipeline.cpp.o.d"
  "resequencing_pipeline"
  "resequencing_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resequencing_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

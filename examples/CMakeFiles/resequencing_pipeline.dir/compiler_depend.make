# Empty compiler generated dependencies file for resequencing_pipeline.
# This may be replaced when dependencies are built.

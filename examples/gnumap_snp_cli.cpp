// gnumap_snp_cli — command-line SNP caller over FASTA/FASTQ files.
//
// The closest equivalent of the released GNUMAP-SNP module: point it at a
// reference and a read set, get a TSV (and optionally VCF) of called SNPs.
//
//   gnumap_snp_cli --ref genome.fa --reads reads.fastq [options]
//
// --reads also accepts gzip-compressed FASTQ (detected by content, so any
// extension works) when the build found zlib.
//
// Options:
//   --out FILE        TSV output (default: stdout)
//   --vcf FILE        also write VCF
//   --sam FILE        also write SAM alignments for every read
//   --alpha X         SNP-wise false-positive rate (default 1e-4)
//   --fdr Q           use Benjamini-Hochberg at level Q instead of --alpha
//   --ploidy N        1 = monoploid (default), 2 = diploid
//   --kmer K          mer size, 4..13 (default 10)
//   --accum KIND      norm | chardisc | centdisc (default norm)
//   --threads N       mapping threads (default 1)
//   --batch N         reads per streamed batch (default 256)
//   --queue-depth N   decoded batches buffered ahead of the mappers (default 4)
//   --output-buffer-bytes N  cap on worker-rendered output bytes parked in
//                     the splicer (0 = sized from batch/queue/threads)
//   --min-coverage X  minimum accumulated mass to test a site (default 3)
//   --phred64         read qualities use the legacy +64 offset
//   --quiet           suppress progress logging
//   --trace-out FILE  write a Chrome trace (chrome://tracing, Perfetto)
//   --metrics-out FILE  write metrics (JSON, or Prometheus for .prom/.txt)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "gnumap/core/pipeline.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/io/gzip_stream.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/string_util.hpp"

using namespace gnumap;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: %s --ref genome.fa --reads reads.fastq [options]\n"
               "  --out FILE --vcf FILE --alpha X --fdr Q --ploidy 1|2\n"
               "  --kmer K --accum norm|chardisc|centdisc --threads N\n"
               "  --batch N --queue-depth N --output-buffer-bytes N\n"
               "  --phmm-fp32 [--phmm-fp32-margin X] --phmm-bin-slack N\n"
               "  --min-coverage X --phred64 --quiet\n"
               "  --trace-out FILE --metrics-out FILE\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  obs::strip_cli_flags(argc, argv);
  obs::install_signal_flush();
  std::string ref_path, reads_path, out_path, vcf_path, sam_path;
  PipelineConfig config;
  config.index.k = 10;
  int phred_offset = kPhred33;
  bool quiet = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--ref") {
        ref_path = need_value(i);
      } else if (arg == "--reads") {
        reads_path = need_value(i);
      } else if (arg == "--out") {
        out_path = need_value(i);
      } else if (arg == "--vcf") {
        vcf_path = need_value(i);
      } else if (arg == "--sam") {
        sam_path = need_value(i);
      } else if (arg == "--alpha") {
        config.alpha = parse_double(need_value(i));
      } else if (arg == "--fdr") {
        config.use_fdr = true;
        config.fdr_q = parse_double(need_value(i));
      } else if (arg == "--ploidy") {
        const auto p = parse_u64(need_value(i));
        if (p != 1 && p != 2) usage(argv[0], "--ploidy must be 1 or 2");
        config.ploidy = p == 1 ? Ploidy::kMonoploid : Ploidy::kDiploid;
      } else if (arg == "--kmer") {
        config.index.k = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--accum") {
        config.accum_kind = accum_kind_from_string(need_value(i));
      } else if (arg == "--threads") {
        config.threads = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--batch") {
        config.stream_batch = static_cast<std::uint32_t>(
            parse_u64(need_value(i)));
        if (config.stream_batch == 0) usage(argv[0], "--batch must be >= 1");
      } else if (arg == "--queue-depth") {
        config.queue_depth = static_cast<std::uint32_t>(
            parse_u64(need_value(i)));
        if (config.queue_depth == 0) {
          usage(argv[0], "--queue-depth must be >= 1");
        }
      } else if (arg == "--output-buffer-bytes") {
        config.output_buffer_bytes = parse_u64(need_value(i));
      } else if (arg == "--phmm-fp32") {
        // Single-precision PHMM lanes (2x lane count).  Borderline mapping
        // decisions are recomputed in double, so SNP calls match the
        // default path; see docs/KERNELS.md §8 for the accuracy model.
        config.phmm_precision = phmm::Precision::kSingle;
      } else if (arg == "--phmm-fp32-margin") {
        config.phmm_fp32_margin = parse_double(need_value(i));
        if (config.phmm_fp32_margin < 0.0) {
          usage(argv[0], "--phmm-fp32-margin must be >= 0");
        }
      } else if (arg == "--phmm-bin-slack") {
        config.phmm_bin_slack =
            static_cast<std::size_t>(parse_u64(need_value(i)));
      } else if (arg == "--min-coverage") {
        config.min_coverage = parse_double(need_value(i));
      } else if (arg == "--phred64") {
        phred_offset = kPhred64;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        usage(argv[0], "unknown option: " + arg);
      }
    }
    if (ref_path.empty() || reads_path.empty()) {
      usage(argv[0], "--ref and --reads are required");
    }
    set_log_level(quiet ? LogLevel::kWarn : LogLevel::kInfo);

    const Genome reference = genome_from_fasta_file(ref_path);
    GNUMAP_LOG(kInfo) << "loaded " << reference.num_bases() << " bases; "
                      << "streaming reads from " << reads_path;

    std::ofstream sam;
    if (!sam_path.empty()) {
      sam.open(sam_path);
      if (!sam) throw ParseError("cannot open SAM output: " + sam_path);
    }
    // The FASTQ is streamed, never materialized: peak read memory is
    // (queue_depth + threads) x batch reads whatever the file size.
    // Gzip-compressed inputs are detected by content and inflated inline.
    auto reads = open_fastq_read_stream(reads_path, config.stream_batch,
                                        phred_offset);
    const PipelineResult result = run_pipeline_stream(
        reference, *reads, config, nullptr, sam.is_open() ? &sam : nullptr);
    GNUMAP_LOG(kInfo) << "mapped " << result.stats.reads_mapped << "/"
                      << result.stats.reads_total << " reads in "
                      << result.batches_decoded << " batches; "
                      << result.calls.size() << " SNP calls";

    if (out_path.empty()) {
      write_snps_tsv(std::cout, result.calls);
    } else {
      write_snps_tsv_file(out_path, result.calls);
    }
    if (!vcf_path.empty()) {
      std::ofstream vcf(vcf_path);
      if (!vcf) throw ParseError("cannot open VCF output: " + vcf_path);
      write_snps_vcf(vcf, result.calls);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "gnumap_snp_cli: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnumap_snp_cli: internal error: %s\n", e.what());
    return 1;
  }
}

// gnumap-client — CLI for the gnumapd mapping service.
//
//   gnumap_client --port N --reads reads.fastq --out calls.tsv [options]
//
// Options:
//   --host H            server address (default 127.0.0.1)
//   --port N            server port (or use --port-file)
//   --port-file FILE    read the port from FILE (written by gnumapd)
//   --reads FILE        FASTQ to map ("-" = stdin); .gz inputs are
//                       decompressed client-side, the wire carries plain text
//   --out FILE          SNP calls TSV (default: stdout); byte-identical to
//                       gnumap_snp_cli --out on the same reads
//   --sam FILE          also request SAM records (identical to --sam)
//   --stats             print the server's STATS snapshot and exit
//   --health            print the server's HEALTH snapshot and exit
//   --shutdown          ask the server to drain and exit
//   --phred64           read qualities use the legacy +64 offset
//   --busy-retries N    BUSY retries before giving up (default 10)
//   --connect-retries N refused/failed connects to retry (default 0)
//   --retries N         reconnect-and-retry attempts after a transport
//                       failure, when the input rewinds (default 2)
//   --deadline-ms N     hard wall-clock budget for the whole map() call,
//                       propagated to the server (default 0 = unlimited)
//   --backoff-base-ms N --backoff-max-ms N --backoff-total-ms N
//                       jittered exponential backoff schedule
//   --backoff-seed N    pin the backoff jitter (reproducible drills)
//   --trace-id N        pin the request trace id sent in MAP_BEGIN
//                       (default: random per request); pair with
//                       --trace-out and scripts/merge_traces.py to splice
//                       this client's timeline with the server's
//   --fault-plan SPEC   deterministic wire fault injection on this client's
//                       sends, for chaos drills against a healthy server
//                       (same grammar as gnumapd --fault-plan); also read
//                       from the GNUMAP_WIRE_FAULT_PLAN environment variable
//   --quiet             suppress the MAP_DONE summary
//
// Exit codes: 0 success, 1 error, 3 server stayed busy.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "gnumap/io/gzip_stream.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/serve/client.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/string_util.hpp"

using namespace gnumap;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: %s --port N --reads reads.fastq [options]\n"
               "  --host H --port-file FILE --out FILE --sam FILE\n"
               "  --stats --health --shutdown --phred64 --quiet\n"
               "  --busy-retries N --connect-retries N --retries N\n"
               "  --deadline-ms N --backoff-base-ms N --backoff-max-ms N\n"
               "  --backoff-total-ms N --backoff-seed N --fault-plan SPEC\n"
               "  --trace-id N --genome ID\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  obs::strip_cli_flags(argc, argv);
  serve::ClientOptions options;
  std::string reads_path, out_path, sam_path, port_file;
  bool want_stats = false, want_health = false, want_shutdown = false;
  bool phred64 = false, quiet = false;
  // Same escape hatch as gnumapd: the environment seeds the plan, an
  // explicit --fault-plan overrides it.
  std::string fault_spec;
  if (const char* env = std::getenv("GNUMAP_WIRE_FAULT_PLAN")) {
    fault_spec = env;
  }

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--host") {
        options.host = need_value(i);
      } else if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(parse_u64(need_value(i)));
      } else if (arg == "--port-file") {
        port_file = need_value(i);
      } else if (arg == "--reads") {
        reads_path = need_value(i);
      } else if (arg == "--out") {
        out_path = need_value(i);
      } else if (arg == "--sam") {
        sam_path = need_value(i);
      } else if (arg == "--stats") {
        want_stats = true;
      } else if (arg == "--health") {
        want_health = true;
      } else if (arg == "--shutdown") {
        want_shutdown = true;
      } else if (arg == "--phred64") {
        phred64 = true;
      } else if (arg == "--busy-retries") {
        options.busy_retries = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--connect-retries") {
        options.connect_retries = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--retries") {
        options.transport_retries =
            static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--deadline-ms") {
        options.deadline_ms =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--backoff-base-ms") {
        options.backoff_base_ms =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--backoff-max-ms") {
        options.backoff_max_ms =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--backoff-total-ms") {
        options.backoff_total_ms =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--backoff-seed") {
        options.backoff_seed = parse_u64(need_value(i));
      } else if (arg == "--trace-id") {
        options.trace_id = parse_u64(need_value(i));
      } else if (arg == "--genome") {
        // Registry genome id (protocol v4); "" = the server's default.
        options.genome_id = need_value(i);
      } else if (arg == "--fault-plan") {
        fault_spec = need_value(i);
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        usage(argv[0], "unknown option: " + arg);
      }
    }
    if (!port_file.empty()) {
      std::ifstream in(port_file);
      std::uint64_t port = 0;
      if (!(in >> port)) {
        throw ParseError("cannot read port from: " + port_file);
      }
      options.port = static_cast<std::uint16_t>(port);
    }
    if (options.port == 0) usage(argv[0], "--port or --port-file required");
    if (!fault_spec.empty()) {
      options.fault_plan = serve::WireFaultPlan::parse(fault_spec);
    }
    if (reads_path.empty() && !want_stats && !want_health &&
        !want_shutdown) {
      usage(argv[0], "--reads (or --stats / --health / --shutdown) required");
    }

    serve::MappingClient client(options);

    if (!reads_path.empty()) {
      // The wire carries plain FASTQ text; gzip inputs are inflated here.
      std::unique_ptr<std::ifstream> file;
      std::istream* raw = &std::cin;
      if (reads_path != "-") {
        file = std::make_unique<std::ifstream>(reads_path,
                                               std::ios::binary);
        if (!*file) throw ParseError("cannot open reads: " + reads_path);
        raw = file.get();
      }
      std::unique_ptr<GzipInflateBuf> gz;
      std::unique_ptr<std::istream> inflated;
      std::istream* fastq = raw;
      if (looks_gzip(*raw)) {
        gz = std::make_unique<GzipInflateBuf>(*raw, reads_path);
        inflated = std::make_unique<std::istream>(gz.get());
        // Surface truncated/corrupt gzip as the original ParseError
        // instead of a silent short read (istream swallows streambuf
        // exceptions into badbit by default).
        inflated->exceptions(std::ios::badbit);
        fastq = inflated.get();
      }

      std::ofstream out_file, sam_file;
      std::ostream* tsv = &std::cout;
      if (!out_path.empty()) {
        out_file.open(out_path);
        if (!out_file) throw ParseError("cannot open output: " + out_path);
        tsv = &out_file;
      }
      std::ostream* sam = nullptr;
      if (!sam_path.empty()) {
        sam_file.open(sam_path);
        if (!sam_file) throw ParseError("cannot open SAM output: " + sam_path);
        sam = &sam_file;
      }

      const auto outcome = client.map(*fastq, *tsv, sam, phred64);
      if (outcome.busy) {
        std::fprintf(stderr, "gnumap_client: server busy, giving up\n");
        return 3;
      }
      if (!quiet) {
        std::ostringstream summary;
        for (const auto& [key, value] : outcome.stats) {
          summary << " " << key << "=" << value;
        }
        if (outcome.attempts > 1 || outcome.reconnects > 0) {
          summary << " attempts=" << outcome.attempts
                  << " busy_answers=" << outcome.busy_answers
                  << " reconnects=" << outcome.reconnects
                  << " backoff_ms=" << outcome.backoff_ms;
        }
        std::fprintf(stderr, "gnumap_client: done%s\n",
                     summary.str().c_str());
      }
    }

    if (want_stats) std::cout << client.stats();
    if (want_health) std::cout << client.health();
    if (want_shutdown) client.shutdown_server();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "gnumap_client: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnumap_client: internal error: %s\n", e.what());
    return 1;
  }
}

// gnumap_index — build the fleet "instant start" index file.
//
// Hashes a FASTA reference once, offline, and serializes the byte-encoded
// genome plus the finished HashIndex into the versioned, CRC-footed fleet
// index format (src/gnumap/fleet/index_file.hpp).  A cold gnumapd then
// mmap()s the file and serves in milliseconds instead of re-hashing.
//
//   gnumap_index --ref genome.fa --out genome.gidx [options]
//
// Options:
//   --ref FILE           FASTA reference (required)
//   --out FILE           output index file (required)
//   --kmer K             index k-mer length (default 10; must match the
//                        daemon's --kmer)
//   --max-positions N    repeat-mask threshold (default 1024)
//   --shard I/N          build shard I of N: the index covers the shard's
//                        store range (core + margin) and records it in the
//                        header so the daemon can validate the file against
//                        its own partition arithmetic
//   --shard-max-read-len N  longest read the shard margin absorbs
//                        (default 512; must match the daemon's)
//   --verify             re-load the written file with full payload CRC
//                        verification and compare shapes (slow; CI uses it)
//   --startup-json FILE  write {"build_seconds":..,"load_seconds":..,...}
//                        to FILE ("-" = stdout); scripts/bench_compare.py
//                        --startup consumes this to gate the >=10x
//                        mmap-vs-rebuild speedup
//   --quiet              suppress progress logging
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "gnumap/core/config.hpp"
#include "gnumap/fleet/index_file.hpp"
#include "gnumap/fleet/registry.hpp"
#include "gnumap/genome/partition.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/string_util.hpp"
#include "gnumap/util/timer.hpp"

using namespace gnumap;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: %s --ref genome.fa --out genome.gidx [options]\n"
               "  --kmer K --max-positions N\n"
               "  --shard I/N --shard-max-read-len N\n"
               "  --verify --startup-json FILE --quiet\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string ref_path, out_path, startup_json;
  HashIndexOptions index_options;
  int shard_index = -1;
  int shard_count = 0;
  std::uint32_t shard_max_read_len = 512;
  bool verify = false;
  bool quiet = false;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--ref") {
        ref_path = need_value(i);
      } else if (arg == "--out") {
        out_path = need_value(i);
      } else if (arg == "--kmer") {
        index_options.k = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--max-positions") {
        index_options.max_positions =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--shard") {
        const std::string spec = need_value(i);
        const auto slash = spec.find('/');
        if (slash == std::string::npos) {
          usage(argv[0], "--shard wants I/N, e.g. --shard 0/2");
        }
        shard_index = static_cast<int>(parse_u64(spec.substr(0, slash)));
        shard_count = static_cast<int>(parse_u64(spec.substr(slash + 1)));
        if (shard_count <= 0 || shard_index < 0 ||
            shard_index >= shard_count) {
          usage(argv[0], "--shard I/N needs 0 <= I < N");
        }
      } else if (arg == "--shard-max-read-len") {
        shard_max_read_len =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--verify") {
        verify = true;
      } else if (arg == "--startup-json") {
        startup_json = need_value(i);
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        usage(argv[0], "unknown option: " + arg);
      }
    }
    if (ref_path.empty()) usage(argv[0], "--ref is required");
    if (out_path.empty()) usage(argv[0], "--out is required");
    set_log_level(quiet ? LogLevel::kWarn : LogLevel::kInfo);

    const Genome genome = genome_from_fasta_file(ref_path);

    // The shard margin must match the daemon's: it derives from the
    // default pipeline's window pad and seeder band (fleet/registry.hpp).
    GenomePos build_begin = 0;
    GenomePos build_end = 0;
    if (shard_index >= 0) {
      PipelineConfig margin_config;
      const auto segments = partition_genome(
          genome, shard_count,
          fleet::shard_margin(margin_config, shard_max_read_len));
      build_begin = segments[static_cast<std::size_t>(shard_index)].store_begin;
      build_end = segments[static_cast<std::size_t>(shard_index)].store_end;
    }

    Timer build_timer;
    HashIndex index =
        shard_index >= 0
            ? HashIndex::build_shard(genome, index_options, build_begin,
                                     build_end)
            : HashIndex(genome, index_options);
    const double build_seconds = build_timer.seconds();
    GNUMAP_LOG(kInfo) << "gnumap_index: built " << index.num_entries()
                      << " entries over " << genome.num_bases()
                      << " bases in " << build_seconds << " s";

    fleet::write_index_file(out_path, genome, index, build_begin, build_end);

    // Time the plain mmap load — the instant start a cold daemon gets.
    // The verifying load faults in and checksums every payload page, so
    // it runs separately and never pollutes load_seconds.
    Timer load_timer;
    const fleet::LoadedIndex loaded = fleet::load_index_file(out_path);
    const double load_seconds = load_timer.seconds();
    if (verify) {
      const fleet::LoadedIndex checked =
          fleet::load_index_file(out_path, /*verify_payload=*/true);
      require(checked.index.num_entries() == index.num_entries(),
              "reloaded index entry count mismatch (file damaged?)");
    }
    require(loaded.index.num_entries() == index.num_entries(),
            "reloaded index entry count mismatch (file damaged?)");
    require(loaded.genome.num_bases() == genome.num_bases(),
            "reloaded genome base count mismatch (file damaged?)");
    GNUMAP_LOG(kInfo) << "gnumap_index: wrote " << loaded.info.file_bytes
                      << " bytes to " << out_path << "; reload"
                      << (verify ? " (payload-verified)" : "") << " took "
                      << load_seconds << " s";

    if (!startup_json.empty()) {
      std::string json = "{\"build_seconds\": " +
                         std::to_string(build_seconds) +
                         ", \"load_seconds\": " + std::to_string(load_seconds) +
                         ", \"file_bytes\": " +
                         std::to_string(loaded.info.file_bytes) +
                         ", \"index_entries\": " +
                         std::to_string(index.num_entries()) +
                         ", \"genome_bases\": " +
                         std::to_string(genome.num_bases()) +
                         ", \"verified\": " + (verify ? "true" : "false") +
                         "}\n";
      if (startup_json == "-") {
        std::fputs(json.c_str(), stdout);
      } else {
        std::ofstream out(startup_json);
        if (!out) {
          throw ParseError("cannot write startup json: " + startup_json);
        }
        out << json;
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "gnumap_index: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnumap_index: internal error: %s\n", e.what());
    return 1;
  }
}

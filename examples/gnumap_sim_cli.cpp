// gnumap_sim_cli — synthetic resequencing workload generator (the MetaSim
// substitute as a standalone tool).
//
//   gnumap_sim_cli --out DIR [options]
//
// Writes DIR/reference.fa, DIR/truth.catalog, DIR/reads.fastq, and for
// --ploidy 2 also DIR/hap1.fa, DIR/hap2.fa.
//
// Options:
//   --length N        reference length in bp          (default 1000000)
//   --snps N          catalog size                    (default length/10600)
//   --coverage X      read coverage                   (default 12)
//   --read-length N   read length in bp               (default 62)
//   --ploidy 1|2      monoploid or diploid individual (default 1)
//   --het-fraction X  het site fraction for --ploidy 2 (default 0.5)
//   --repeats X       genome repeat fraction          (default 0.03)
//   --error-start X   5' substitution error rate      (default 0.002)
//   --error-end X     3' substitution error rate      (default 0.02)
//   --indel-rate X    per-base indel rate             (default 0.0005)
//   --seed N          master seed                     (default 20120521)
#include <cstdio>
#include <filesystem>
#include <string>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/string_util.hpp"

using namespace gnumap;
namespace fs = std::filesystem;

namespace {

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: %s --out DIR [--length N] [--snps N] [--coverage X]\n"
               "  [--read-length N] [--ploidy 1|2] [--het-fraction X]\n"
               "  [--repeats X] [--error-start X] [--error-end X]\n"
               "  [--indel-rate X] [--seed N]\n",
               argv0);
  std::exit(2);
}

std::string genome_to_fasta_seq(const Genome& genome, std::uint32_t contig) {
  std::string seq;
  seq.reserve(genome.contig_size(contig));
  const auto start = genome.contig_start(contig);
  for (std::uint64_t i = 0; i < genome.contig_size(contig); ++i) {
    seq += decode_base(genome.at(start + i));
  }
  return seq;
}

}  // namespace

int main(int argc, char** argv) {
  obs::strip_cli_flags(argc, argv);
  fs::path out_dir;
  ReferenceGenOptions ref_options;
  CatalogGenOptions catalog_options;
  ReadSimOptions read_options;
  int ploidy = 1;
  std::uint64_t snps = 0;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--out") {
        out_dir = need_value(i);
      } else if (arg == "--length") {
        ref_options.length = parse_u64(need_value(i));
      } else if (arg == "--snps") {
        snps = parse_u64(need_value(i));
      } else if (arg == "--coverage") {
        read_options.coverage = parse_double(need_value(i));
      } else if (arg == "--read-length") {
        read_options.read_length =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--ploidy") {
        ploidy = static_cast<int>(parse_u64(need_value(i)));
        if (ploidy != 1 && ploidy != 2) usage(argv[0], "--ploidy must be 1|2");
      } else if (arg == "--het-fraction") {
        catalog_options.het_fraction = parse_double(need_value(i));
      } else if (arg == "--repeats") {
        ref_options.repeat_fraction = parse_double(need_value(i));
      } else if (arg == "--error-start") {
        read_options.error_rate_start = parse_double(need_value(i));
      } else if (arg == "--error-end") {
        read_options.error_rate_end = parse_double(need_value(i));
      } else if (arg == "--indel-rate") {
        read_options.indel_rate = parse_double(need_value(i));
      } else if (arg == "--seed") {
        const auto seed = parse_u64(need_value(i));
        ref_options.seed = seed;
        catalog_options.seed = seed + 1;
        read_options.seed = seed + 2;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        usage(argv[0], "unknown option: " + arg);
      }
    }
    if (out_dir.empty()) usage(argv[0], "--out is required");
    fs::create_directories(out_dir);
    if (snps == 0) snps = std::max<std::uint64_t>(1, ref_options.length / 10'600);
    catalog_options.count = snps;
    if (ploidy == 1) catalog_options.het_fraction = 0.0;

    const Genome reference = generate_reference(ref_options);
    const SnpCatalog catalog = generate_catalog(reference, catalog_options);
    write_fasta_file((out_dir / "reference.fa").string(),
                     {{"chrSim", genome_to_fasta_seq(reference, 0)}});
    write_catalog_file((out_dir / "truth.catalog").string(), catalog);

    std::vector<Read> reads;
    if (ploidy == 1) {
      const Genome individual = apply_catalog(reference, catalog);
      reads = strip_metadata(simulate_reads(individual, read_options));
    } else {
      const auto individual = apply_catalog_diploid(reference, catalog);
      write_fasta_file((out_dir / "hap1.fa").string(),
                       {{"chrSim", genome_to_fasta_seq(individual.hap1, 0)}});
      write_fasta_file((out_dir / "hap2.fa").string(),
                       {{"chrSim", genome_to_fasta_seq(individual.hap2, 0)}});
      reads = strip_metadata(simulate_reads_diploid(
          individual.hap1, individual.hap2, read_options));
    }
    write_fastq_file((out_dir / "reads.fastq").string(), reads);

    std::printf("wrote %s: %.2f Mbp reference, %zu SNPs, %zu reads "
                "(%ux bp at %.1fx)\n",
                out_dir.c_str(),
                static_cast<double>(ref_options.length) / 1e6, catalog.size(),
                reads.size(), read_options.read_length,
                read_options.coverage);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "gnumap_sim_cli: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnumap_sim_cli: internal error: %s\n", e.what());
    return 1;
  }
}

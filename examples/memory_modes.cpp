// Memory-mode comparison: the same SNP-calling run under NORM, CHARDISC and
// CENTDISC accumulation — a miniature of the paper's Table III, runnable in
// seconds.
//
// Usage: memory_modes [genome_bp]
#include <cstdio>
#include <cstdlib>

#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/string_util.hpp"
#include "gnumap/util/timer.hpp"

using namespace gnumap;

int main(int argc, char** argv) {
  gnumap::obs::strip_cli_flags(argc, argv);
  const std::uint64_t genome_bp =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;

  ReferenceGenOptions ref_options;
  ref_options.length = genome_bp;
  const Genome reference = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = std::max<std::uint64_t>(15, genome_bp / 10'600);
  const auto truth = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, truth);
  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  std::printf("%.2f Mbp genome, %zu reads, %zu planted SNPs\n\n",
              static_cast<double>(genome_bp) / 1e6, reads.size(),
              truth.size());
  std::printf("%-10s %12s %8s %6s %6s %10s\n", "mode", "accum mem", "time",
              "TP", "FP", "precision");
  for (const auto kind :
       {AccumKind::kNorm, AccumKind::kCharDisc, AccumKind::kCentDisc}) {
    PipelineConfig config;
    config.index.k = 10;
    config.accum_kind = kind;
    Timer timer;
    const auto result = run_pipeline(reference, reads, config);
    const auto eval = evaluate_calls(result.calls, truth);
    std::printf("%-10s %12s %7.1fs %6llu %6llu %9.1f%%\n",
                accum_kind_name(kind),
                format_bytes(result.accum_memory_bytes).c_str(),
                timer.seconds(), static_cast<unsigned long long>(eval.tp),
                static_cast<unsigned long long>(eval.fp),
                eval.precision() * 100.0);
  }
  return 0;
}

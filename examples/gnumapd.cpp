// gnumapd — long-lived mapping service over a hot index.
//
// Loads the reference and builds the hash index once, then serves MAP
// requests over a framed TCP protocol (src/gnumap/serve/wire.hpp) until
// stopped.  Results are byte-identical to gnumap_snp_cli on the same
// reads: both run the identical MappingSession.
//
//   gnumapd --ref genome.fa [options]
//
// Options:
//   --port N            TCP port (default 0 = pick an ephemeral port)
//   --port-file FILE    write the bound port to FILE once listening
//   --bind-any          listen on 0.0.0.0 instead of loopback
//   --admin-port N      embedded admin HTTP endpoint (/metrics /healthz
//                       /statusz /tracez; admin_http.hpp); off unless
//                       given, 0 = pick an ephemeral port
//   --admin-port-file FILE  write the bound admin port to FILE
//   --max-connections N concurrent connections (default 16)
//   --admission-reads N admission window: total in-flight reads (default 1M)
//   --per-conn-reads N  per-connection share of the window (default 0 = all)
//   --io-timeout-ms N   per-frame socket deadline (default 30000)
//   --request-timeout-ms N  whole-request deadline (default 300000, 0 = off;
//                       the tighter of this and the client's MAP_BEGIN
//                       deadline wins)
//   --busy-retry-ms N   base BUSY retry hint (default 250); scaled by queue
//                       depth up to --busy-retry-max-ms (default 10000)
//   --max-conn-seconds S  per-connection lifetime budget (0 = unlimited)
//   --max-conn-bytes N  per-connection receive budget (0 = unlimited)
//   --fault-plan SPEC   deterministic wire fault injection for chaos drills
//                       (fault_shim.hpp grammar, e.g. "corrupt@4096,
//                       stall@0:250,disconnect@65536"); defaults to the
//                       GNUMAP_WIRE_FAULT_PLAN environment variable
//   --alpha X --fdr Q --ploidy 1|2 --kmer K --accum KIND --threads N
//   --batch N --queue-depth N --output-buffer-bytes N --min-coverage X
//                       (as in gnumap_snp_cli)
//   --quiet             suppress progress logging
//   --trace-out FILE --metrics-out FILE          (flushed on exit)
//
// SIGINT/SIGTERM begin a graceful drain: the listener stops accepting,
// in-flight requests finish, and the process exits through the normal
// path, so --trace-out/--metrics-out files are still written.  A second
// signal flushes those artifacts immediately and exits with the signal's
// default disposition (an impatient operator still gets the artifacts).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gnumap/serve/fault_shim.hpp"

#include "gnumap/fleet/index_file.hpp"
#include "gnumap/fleet/registry.hpp"
#include "gnumap/fleet/router.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/serve/server.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/log.hpp"
#include "gnumap/util/string_util.hpp"

using namespace gnumap;

namespace {

std::atomic<serve::MappingServer*> g_server{nullptr};
std::atomic<fleet::RouterServer*> g_router{nullptr};

// Only lock-free atomic ops on the drain path: store to g_server happens
// before the handlers are installed, and request_stop() is a relaxed
// atomic store.  A second signal means the operator is done waiting for
// the drain — then we adopt obs::install_signal_flush semantics: write
// the --trace-out/--metrics-out artifacts and die with the signal's
// default disposition, so even a cut-short run leaves its artifacts
// behind (asserted by scripts/serve_drain.sh).
void drain_handler(int sig) {
  auto* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr && !server->stopping()) {
    server->request_stop();
    return;
  }
  auto* router = g_router.load(std::memory_order_acquire);
  if (router != nullptr && !router->stopping()) {
    router->request_stop();
    return;
  }
  obs::flush_cli_outputs();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

/// "ID=PATH" → GenomeSpec; the loader is chosen by sniffing the file's
/// magic, so FASTA references and fleet index files mix freely.
fleet::GenomeSpec parse_genome_spec(const std::string& value) {
  const auto eq = value.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= value.size()) {
    throw ParseError("--genome wants ID=PATH, got \"" + value + "\"");
  }
  fleet::GenomeSpec spec;
  spec.id = value.substr(0, eq);
  spec.path = value.substr(eq + 1);
  std::ifstream probe(spec.path, std::ios::binary);
  char magic[8] = {};
  probe.read(magic, sizeof magic);
  spec.is_index_file =
      probe.gcount() == sizeof magic &&
      std::string_view(magic, 8) == std::string_view("GNFLDX\x01\x00", 8);
  return spec;
}

/// "HOST:PORT" (host optional, defaults to loopback) → ShardBackend.
fleet::ShardBackend parse_backend(const std::string& value) {
  fleet::ShardBackend backend;
  const auto colon = value.rfind(':');
  if (colon == std::string::npos) {
    backend.port = static_cast<std::uint16_t>(parse_u64(value));
  } else {
    if (colon > 0) backend.host = value.substr(0, colon);
    backend.port =
        static_cast<std::uint16_t>(parse_u64(value.substr(colon + 1)));
  }
  return backend;
}

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: %s --ref genome.fa [options]\n"
               "       %s --index genome.gidx [options]\n"
               "       %s --route HOST:PORT[,HOST:PORT...] --ref genome.fa\n"
               "  --genome ID=PATH     additional registry genome (repeatable;\n"
               "                       PATH is a FASTA or a gnumap_index file)\n"
               "  --memory-budget N    registry resident-bytes budget (0 = off)\n"
               "  --evicted-retry-ms N retry hint on kEvicted answers\n"
               "  --per-genome-admission-reads N  per-genome window\n"
               "  --shard I/N          serve shard I of N of each genome\n"
               "  --shard-max-read-len N  margin sizing for shard mode\n"
               "  --port N --port-file FILE --bind-any\n"
               "  --admin-port N --admin-port-file FILE\n"
               "  --max-connections N --admission-reads N --per-conn-reads N\n"
               "  --io-timeout-ms N --request-timeout-ms N\n"
               "  --busy-retry-ms N --busy-retry-max-ms N\n"
               "  --max-conn-seconds S --max-conn-bytes N --fault-plan SPEC\n"
               "  --alpha X --fdr Q --ploidy 1|2 --kmer K\n"
               "  --accum norm|chardisc|centdisc --threads N\n"
               "  --batch N --queue-depth N --output-buffer-bytes N\n"
               "  --min-coverage X --quiet\n"
               "  --phmm-fp32 [--phmm-fp32-margin X] --phmm-bin-slack N\n"
               "  --trace-out FILE --metrics-out FILE\n",
               argv0, argv0, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  obs::strip_cli_flags(argc, argv);
  std::string ref_path, port_file, admin_port_file;
  std::string index_path;
  std::vector<fleet::GenomeSpec> extra_genomes;
  std::vector<fleet::ShardBackend> route_backends;
  int shard_index = -1;
  int shard_count = 0;
  std::uint32_t shard_max_read_len = 512;
  PipelineConfig config;
  config.index.k = 10;
  serve::ServeOptions options;
  bool quiet = false;
  // Chaos drills default to the environment so a supervisor can batter a
  // whole fleet without touching each unit's command line.
  std::string fault_spec;
  if (const char* env = std::getenv("GNUMAP_WIRE_FAULT_PLAN")) {
    fault_spec = env;
  }

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--ref") {
        ref_path = need_value(i);
      } else if (arg == "--index") {
        index_path = need_value(i);
      } else if (arg == "--genome") {
        extra_genomes.push_back(parse_genome_spec(need_value(i)));
      } else if (arg == "--memory-budget") {
        options.registry_memory_budget_bytes = parse_u64(need_value(i));
      } else if (arg == "--evicted-retry-ms") {
        options.evicted_retry_ms =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--per-genome-admission-reads") {
        options.per_genome_admission_reads = parse_u64(need_value(i));
      } else if (arg == "--shard") {
        const std::string spec = need_value(i);
        const auto slash = spec.find('/');
        if (slash == std::string::npos) {
          usage(argv[0], "--shard wants I/N, e.g. --shard 0/2");
        }
        shard_index = static_cast<int>(parse_u64(spec.substr(0, slash)));
        shard_count = static_cast<int>(parse_u64(spec.substr(slash + 1)));
        if (shard_count <= 0 || shard_index < 0 ||
            shard_index >= shard_count) {
          usage(argv[0], "--shard I/N needs 0 <= I < N");
        }
      } else if (arg == "--shard-max-read-len") {
        shard_max_read_len =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--route") {
        // Comma-separated and repeatable both work.
        std::string list = need_value(i);
        std::size_t start = 0;
        while (start <= list.size()) {
          const auto comma = list.find(',', start);
          const std::string one =
              list.substr(start, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - start);
          if (!one.empty()) route_backends.push_back(parse_backend(one));
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      } else if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(parse_u64(need_value(i)));
      } else if (arg == "--port-file") {
        port_file = need_value(i);
      } else if (arg == "--bind-any") {
        options.bind_any = true;
      } else if (arg == "--admin-port") {
        options.admin_port = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--admin-port-file") {
        admin_port_file = need_value(i);
      } else if (arg == "--max-connections") {
        options.max_connections = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--admission-reads") {
        options.admission_reads = parse_u64(need_value(i));
      } else if (arg == "--per-conn-reads") {
        options.per_connection_reads = parse_u64(need_value(i));
      } else if (arg == "--io-timeout-ms") {
        options.io_timeout_ms = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--request-timeout-ms") {
        options.request_timeout_ms =
            static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--busy-retry-ms") {
        options.busy_retry_ms =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--busy-retry-max-ms") {
        options.busy_retry_max_ms =
            static_cast<std::uint32_t>(parse_u64(need_value(i)));
      } else if (arg == "--max-conn-seconds") {
        options.max_connection_seconds = parse_double(need_value(i));
      } else if (arg == "--max-conn-bytes") {
        options.max_connection_bytes = parse_u64(need_value(i));
      } else if (arg == "--fault-plan") {
        fault_spec = need_value(i);
      } else if (arg == "--alpha") {
        config.alpha = parse_double(need_value(i));
      } else if (arg == "--fdr") {
        config.use_fdr = true;
        config.fdr_q = parse_double(need_value(i));
      } else if (arg == "--ploidy") {
        const auto p = parse_u64(need_value(i));
        if (p != 1 && p != 2) usage(argv[0], "--ploidy must be 1 or 2");
        config.ploidy = p == 1 ? Ploidy::kMonoploid : Ploidy::kDiploid;
      } else if (arg == "--kmer") {
        config.index.k = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--accum") {
        config.accum_kind = accum_kind_from_string(need_value(i));
      } else if (arg == "--threads") {
        config.threads = static_cast<int>(parse_u64(need_value(i)));
      } else if (arg == "--batch") {
        config.stream_batch = static_cast<std::uint32_t>(
            parse_u64(need_value(i)));
        if (config.stream_batch == 0) usage(argv[0], "--batch must be >= 1");
      } else if (arg == "--queue-depth") {
        config.queue_depth = static_cast<std::uint32_t>(
            parse_u64(need_value(i)));
        if (config.queue_depth == 0) {
          usage(argv[0], "--queue-depth must be >= 1");
        }
      } else if (arg == "--output-buffer-bytes") {
        config.output_buffer_bytes = parse_u64(need_value(i));
      } else if (arg == "--min-coverage") {
        config.min_coverage = parse_double(need_value(i));
      } else if (arg == "--phmm-fp32") {
        // Single-precision PHMM lanes; borderline mapping decisions are
        // recomputed in double so served calls match the default path.
        config.phmm_precision = phmm::Precision::kSingle;
      } else if (arg == "--phmm-fp32-margin") {
        config.phmm_fp32_margin = parse_double(need_value(i));
        if (config.phmm_fp32_margin < 0.0) {
          usage(argv[0], "--phmm-fp32-margin must be >= 0");
        }
      } else if (arg == "--phmm-bin-slack") {
        config.phmm_bin_slack =
            static_cast<std::size_t>(parse_u64(need_value(i)));
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        usage(argv[0], "unknown option: " + arg);
      }
    }
    if (!fault_spec.empty()) {
      options.fault_plan = serve::WireFaultPlan::parse(fault_spec);
    }
    set_log_level(quiet ? LogLevel::kWarn : LogLevel::kInfo);

    // Router mode: scatter/gather over backend shards.  The genome is
    // needed only for SAM headers and SNP calling — no index is built.
    if (!route_backends.empty()) {
      if (shard_index >= 0) {
        usage(argv[0], "--route and --shard are mutually exclusive");
      }
      std::unique_ptr<fleet::LoadedIndex> loaded;
      std::optional<Genome> fasta_genome;
      const Genome* genome = nullptr;
      if (!index_path.empty()) {
        loaded = std::make_unique<fleet::LoadedIndex>(
            fleet::load_index_file(index_path));
        genome = &loaded->genome;
      } else if (!ref_path.empty()) {
        fasta_genome.emplace(genome_from_fasta_file(ref_path));
        genome = &*fasta_genome;
      } else {
        usage(argv[0], "router mode needs --ref or --index for the genome");
      }
      fleet::RouterOptions ropt;
      ropt.port = options.port;
      ropt.bind_any = options.bind_any;
      ropt.io_timeout_ms = options.io_timeout_ms;
      ropt.max_frame_bytes = options.max_frame_bytes;
      ropt.backends = route_backends;
      fleet::RouterServer router(*genome, config, ropt);
      if (!port_file.empty()) {
        std::ofstream out(port_file);
        if (!out) throw ParseError("cannot write port file: " + port_file);
        out << router.port() << "\n";
      }
      g_router.store(&router, std::memory_order_release);
      std::signal(SIGINT, drain_handler);
      std::signal(SIGTERM, drain_handler);
      router.run();
      g_router.store(nullptr, std::memory_order_release);
      GNUMAP_LOG(kInfo) << "gnumapd: router drained";
      obs::flush_cli_outputs();
      return 0;
    }

    options.shard_index = shard_index;
    options.shard_count = shard_count;
    options.shard_max_read_len = shard_max_read_len;

    // Registry mode whenever an index file or extra genomes are involved;
    // the plain --ref path stays on the legacy eager constructor.
    std::optional<Genome> reference;
    std::unique_ptr<serve::MappingServer> server;
    if (!index_path.empty() || !extra_genomes.empty()) {
      std::vector<fleet::GenomeSpec> specs;
      if (!index_path.empty() || !ref_path.empty()) {
        fleet::GenomeSpec def;
        def.id = "default";
        if (!index_path.empty()) {
          def.path = index_path;
          def.is_index_file = true;
        } else {
          def.path = ref_path;
        }
        specs.push_back(std::move(def));
      }
      // With only --genome entries, the first one doubles as the default
      // genome that v3 clients (no genome id on the wire) map against.
      for (auto& g : extra_genomes) specs.push_back(std::move(g));
      server = std::make_unique<serve::MappingServer>(std::move(specs),
                                                      config, options);
    } else {
      if (ref_path.empty()) usage(argv[0], "--ref is required");
      reference.emplace(genome_from_fasta_file(ref_path));
      server =
          std::make_unique<serve::MappingServer>(*reference, config, options);
    }

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) throw ParseError("cannot write port file: " + port_file);
      out << server->port() << "\n";
    }
    if (!admin_port_file.empty()) {
      if (server->admin_port() < 0) {
        throw ParseError("--admin-port-file needs --admin-port");
      }
      std::ofstream out(admin_port_file);
      if (!out) {
        throw ParseError("cannot write admin port file: " + admin_port_file);
      }
      out << server->admin_port() << "\n";
    }

    g_server.store(server.get(), std::memory_order_release);
    std::signal(SIGINT, drain_handler);
    std::signal(SIGTERM, drain_handler);

    server->run();  // returns after a drain (signal or SHUTDOWN frame)

    g_server.store(nullptr, std::memory_order_release);
    const auto stats = server->stats();
    GNUMAP_LOG(kInfo) << "gnumapd: drained after " << stats.requests_total
                      << " requests (" << stats.reads_total << " reads, "
                      << stats.requests_rejected << " rejected, "
                      << stats.requests_failed << " failed)";
    obs::flush_cli_outputs();
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "gnumapd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gnumapd: internal error: %s\n", e.what());
    return 1;
  }
}

// Distributed mapping demo: the paper's two MPI strategies on the mpsim
// substrate, with communication accounting and modeled cluster speedup.
//
// Usage: distributed_mapping [ranks] [genome_bp]
//                            [--trace-out FILE] [--metrics-out FILE]
//
// With --trace-out the run emits a Chrome trace with one named track per
// rank (comm/compute/checkpoint spans); --metrics-out exports the registry
// (per-rank counters included) as JSON or Prometheus text.
#include <cstdio>
#include <cstdlib>

#include "gnumap/core/dist_modes.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/mpsim/cost_model.hpp"
#include "gnumap/obs/obs_cli.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/string_util.hpp"

using namespace gnumap;

int main(int argc, char** argv) {
  obs::strip_cli_flags(argc, argv);
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t genome_bp =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;

  // Workload: mutated genome + 8x reads.
  ReferenceGenOptions ref_options;
  ref_options.length = genome_bp;
  const Genome reference = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = std::max<std::uint64_t>(10, genome_bp / 10'600);
  const auto truth = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, truth);
  ReadSimOptions sim_options;
  sim_options.coverage = 8.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  PipelineConfig config;
  config.index.k = 10;
  const HashIndex shared_index(reference, config.index);
  const CostModelParams cost_params;

  std::printf("workload: %.2f Mbp genome, %zu reads, %zu truth SNPs, "
              "%d ranks\n\n",
              static_cast<double>(genome_bp) / 1e6, reads.size(),
              truth.size(), ranks);

  for (const auto mode :
       {DistMode::kReadPartition, DistMode::kGenomePartition}) {
    const bool read_partition = mode == DistMode::kReadPartition;
    DistOptions options;
    options.ranks = ranks;
    options.mode = mode;
    options.serialize_compute = true;
    const auto result = run_distributed(reference, reads, config, options,
                                        read_partition ? &shared_index
                                                       : nullptr);
    const auto eval = evaluate_calls(result.calls, truth);

    std::printf("--- %s ---\n", read_partition
                                    ? "read partition (shared genome)"
                                    : "genome partition (spread memory)");
    std::printf("calls %zu (recall %.1f%%, precision %.1f%%)\n",
                result.calls.size(), eval.recall() * 100.0,
                eval.precision() * 100.0);
    std::printf("per-rank accumulator: %s (total %s)\n",
                format_bytes(result.max_rank_accum_bytes).c_str(),
                format_bytes(result.total_accum_bytes).c_str());
    std::printf("  %-6s %10s %12s %12s %12s %12s\n", "rank", "compute",
                "msgs sent", "sent", "msgs recv", "recv");
    CommStats totals;
    for (int r = 0; r < ranks; ++r) {
      const auto& cost = result.costs[static_cast<std::size_t>(r)];
      std::printf("  %-6d %9.2fs %12llu %12s %12llu %12s\n", r,
                  cost.compute_seconds,
                  static_cast<unsigned long long>(cost.comm.messages_sent),
                  format_bytes(cost.comm.bytes_sent).c_str(),
                  static_cast<unsigned long long>(
                      cost.comm.messages_received),
                  format_bytes(cost.comm.bytes_received).c_str());
      totals.messages_sent += cost.comm.messages_sent;
      totals.bytes_sent += cost.comm.bytes_sent;
      totals.messages_received += cost.comm.messages_received;
      totals.bytes_received += cost.comm.bytes_received;
    }
    std::printf("  %-6s %10s %12llu %12s %12llu %12s\n", "total", "",
                static_cast<unsigned long long>(totals.messages_sent),
                format_bytes(totals.bytes_sent).c_str(),
                static_cast<unsigned long long>(totals.messages_received),
                format_bytes(totals.bytes_received).c_str());
    const double makespan = simulated_makespan(result.costs, cost_params);
    std::printf("modeled cluster makespan: %.2fs -> %.0f sequences/s\n\n",
                makespan, static_cast<double>(reads.size()) / makespan);
  }

  // Streaming delivery: same read-partition run, but rank 0 pulls batches
  // from a ReadStream and ships each shard piecewise instead of every rank
  // holding the whole read vector.  Calls are byte-identical to the vector
  // path (the stream is sized, so shards match shard_of exactly).
  {
    DistOptions options;
    options.ranks = ranks;
    options.mode = DistMode::kReadPartition;
    VectorReadStream stream(reads, config.stream_batch);
    const auto result =
        run_distributed(reference, stream, config, options, &shared_index);
    const auto eval = evaluate_calls(result.calls, truth);
    std::printf("--- read partition, streamed delivery ---\n");
    std::printf("calls %zu (recall %.1f%%, precision %.1f%%)\n",
                result.calls.size(), eval.recall() * 100.0,
                eval.precision() * 100.0);
  }
  return 0;
}

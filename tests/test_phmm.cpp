// Tests for the Pair-HMM: forward/backward against brute-force path
// enumeration, posterior invariants, marginal condensation, Viterbi, NW.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/phmm/forward_backward.hpp"
#include "gnumap/phmm/marginal.hpp"
#include "gnumap/phmm/nw.hpp"
#include "gnumap/phmm/params.hpp"
#include "gnumap/phmm/pwm.hpp"
#include "gnumap/phmm/viterbi.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {
namespace {

Read make_read(const std::string& seq, std::uint8_t qual = 40) {
  Read read;
  read.name = "r";
  read.bases = encode_sequence(seq);
  read.quals.assign(read.bases.size(), qual);
  return read;
}

// ---------------------------------------------------------------------------
// Brute-force path enumeration (exact reference for tiny instances).

enum BfState { kBfM = 0, kBfGX = 1, kBfGY = 2 };

struct BruteForce {
  const PhmmParams& params;
  std::vector<double> pstar;  // (i-1) * (m+1) + j, like the library
  std::size_t n, m;
  BoundaryMode mode;

  double total = 0.0;
  // Posterior numerators keyed by (state, i, j).
  std::map<std::tuple<int, std::size_t, std::size_t>, double> cell_mass;

  BruteForce(const PhmmParams& p, const Pwm& pwm,
             std::span<const std::uint8_t> window, BoundaryMode bmode)
      : params(p), n(pwm.length()), m(window.size()), mode(bmode) {
    const auto mixed = pwm.mixed_emissions(params);
    pstar.assign(n * (m + 1), 0.0);
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = 1; j <= m; ++j) {
        pstar[(i - 1) * (m + 1) + j] =
            mixed[(i - 1) * 5 + std::min<std::uint8_t>(window[j - 1], 4)];
      }
    }
  }

  void run() {
    if (mode == BoundaryMode::kGlobal) {
      extend(kBfM, 0, 0, 1.0, {});
    } else {
      for (std::size_t j0 = 0; j0 <= m; ++j0) extend(kBfM, 0, j0, 1.0, {});
    }
  }

  // `visited` records cells consumed by this path for posterior credit.
  void extend(
      int state, std::size_t i, std::size_t j, double prob,
      std::vector<std::tuple<int, std::size_t, std::size_t>> visited) {
    const bool at_end = mode == BoundaryMode::kGlobal
                            ? (i == n && j == m)
                            : (i == n && (state == kBfM || state == kBfGX));
    if (at_end) {
      total += prob;
      for (const auto& cell : visited) cell_mass[cell] += prob;
      return;
    }
    if (i > n || j > m) return;
    if (mode != BoundaryMode::kGlobal && i == n) return;  // dead GY tail

    const double t_mm = params.t_mm(), t_mg = params.t_mg();
    const double t_gm = params.t_gm(), t_gg = params.t_gg();
    const double q = params.q;

    auto go = [&](int next, std::size_t ni, std::size_t nj, double step) {
      if (ni > n || nj > m || step <= 0.0) return;
      auto v = visited;
      v.emplace_back(next, ni, nj);
      extend(next, ni, nj, prob * step, std::move(v));
    };

    const double to_m = state == kBfM ? t_mm : t_gm;
    if (i + 1 <= n && j + 1 <= m) {
      go(kBfM, i + 1, j + 1, to_m * pstar[i * (m + 1) + j + 1]);
    }
    // Boundary semantics mirror the library: in global mode the alignment
    // must open with a match (the paper zeroes row 0 and column 0); in
    // semi-global mode a leading read gap is allowed but a leading genome
    // gap is not (the free prefix covers genome skipping instead).
    const bool at_start = i == 0;
    const bool global = mode == BoundaryMode::kGlobal;
    // G_X reachable from M and G_X; G_Y from M and G_Y.
    if ((state == kBfM || state == kBfGX) && !(at_start && global)) {
      go(kBfGX, i + 1, j, (state == kBfM ? t_mg : t_gg) * q);
    }
    if ((state == kBfM || state == kBfGY) && !at_start) {
      go(kBfGY, i, j + 1, (state == kBfM ? t_mg : t_gg) * q);
    }
  }

  double posterior(int state, std::size_t i, std::size_t j) const {
    const auto it = cell_mass.find({state, i, j});
    return it == cell_mass.end() ? 0.0 : it->second / total;
  }
};

/// Library posteriors: scaled f*b normalized by the row mass.
struct LibPosteriors {
  PairHmm hmm;
  AlignmentMatrices mats;
  std::vector<double> masses;
  bool ok;

  LibPosteriors(const PhmmParams& params, BoundaryMode mode, const Pwm& pwm,
                std::span<const std::uint8_t> window)
      : hmm(params, mode) {
    ok = hmm.align(pwm, window, mats);
    if (ok) masses = hmm.row_masses(mats);
  }

  double at(int state, std::size_t i, std::size_t j) const {
    const std::size_t idx = i * mats.stride() + j;
    double u = 0.0;
    switch (state) {
      case kBfM:  u = mats.fm[idx] * mats.bm[idx]; break;
      case kBfGX: u = mats.fgx[idx] * mats.bgx[idx]; break;
      case kBfGY: u = mats.fgy[idx] * mats.bgy[idx]; break;
    }
    return masses[i] > 0.0 ? u / masses[i] : 0.0;
  }
};

class BruteForceCompare
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BruteForceCompare, GlobalTotalsAndPosteriors) {
  const auto [seed, mode_index] = GetParam();
  const auto mode =
      mode_index == 0 ? BoundaryMode::kGlobal : BoundaryMode::kSemiGlobal;
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 2 + rng.next_below(2);  // 2..3
  const std::size_t m = 2 + rng.next_below(3);  // 2..4

  std::string read_seq, window_seq;
  for (std::size_t i = 0; i < n; ++i) read_seq += "ACGT"[rng.next_below(4)];
  for (std::size_t j = 0; j < m; ++j) window_seq += "ACGT"[rng.next_below(4)];
  const Read read = make_read(read_seq, 25);
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence(window_seq);

  PhmmParams params;
  params.gap_open = 0.08;
  params.gap_extend = 0.4;

  BruteForce bf(params, pwm, window, mode);
  bf.run();
  ASSERT_GT(bf.total, 0.0);

  LibPosteriors lib(params, mode, pwm, window);
  ASSERT_TRUE(lib.ok);
  EXPECT_NEAR(lib.mats.log_likelihood, std::log(bf.total),
              1e-9 * std::fabs(std::log(bf.total)) + 1e-9);

  for (int state : {kBfM, kBfGX, kBfGY}) {
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = 0; j <= m; ++j) {
        EXPECT_NEAR(lib.at(state, i, j), bf.posterior(state, i, j), 1e-9)
            << "state=" << state << " i=" << i << " j=" << j
            << " mode=" << mode_index;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BruteForceCompare,
    ::testing::Combine(::testing::Range(1, 13), ::testing::Values(0, 1)));

// ---------------------------------------------------------------------------
// Invariants on larger random instances.

class PhmmInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PhmmInvariants, RowMassesEqualAndPosteriorsNormalized) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 20 + rng.next_below(40);
  const std::size_t m = n + 10 + rng.next_below(20);
  std::string read_seq, window_seq;
  for (std::size_t i = 0; i < n; ++i) read_seq += "ACGT"[rng.next_below(4)];
  for (std::size_t j = 0; j < m; ++j) window_seq += "ACGT"[rng.next_below(4)];

  const Read read = make_read(read_seq, 30);
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence(window_seq);

  for (const auto mode :
       {BoundaryMode::kGlobal, BoundaryMode::kSemiGlobal}) {
    LibPosteriors lib(PhmmParams{}, mode, pwm, window);
    ASSERT_TRUE(lib.ok);
    // Row masses c_i are all the (scaled) total likelihood; their pairwise
    // ratios must be 1 because scaling is uniform within a row.
    // Posteriors per read row must sum to one over {match, read-gap}.
    for (std::size_t i = 1; i <= n; ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j <= m; ++j) {
        row_sum += lib.at(kBfM, i, j) + lib.at(kBfGX, i, j);
      }
      EXPECT_NEAR(row_sum, 1.0, 1e-9) << "i=" << i;
    }
  }
}

TEST_P(PhmmInvariants, PerfectReadPeaksOnDiagonal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  const std::size_t m = 90;
  std::string window_seq;
  for (std::size_t j = 0; j < m; ++j) window_seq += "ACGT"[rng.next_below(4)];
  const std::size_t offset = 12;
  const std::size_t n = 50;
  const Read read = make_read(window_seq.substr(offset, n), 40);
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence(window_seq);

  LibPosteriors lib(PhmmParams{}, BoundaryMode::kSemiGlobal, pwm, window);
  ASSERT_TRUE(lib.ok);
  // Posterior of the true match cells should dominate.
  double diag_mass = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    diag_mass += lib.at(kBfM, i, offset + i);
  }
  EXPECT_GT(diag_mass / static_cast<double>(n), 0.9);
  // Per-base log likelihood for a perfect read is far above the mapping
  // threshold used by the pipeline.
  EXPECT_GT(lib.mats.log_likelihood / static_cast<double>(n), -2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhmmInvariants, ::testing::Range(1, 9));

TEST(PhmmInvariantsExtra, GlobalColumnSumsToOne) {
  // In global mode every path consumes each genome base exactly once, so
  // for every column j: sum_i [P(match at (i,j)) + P(y_j gapped at i)] = 1.
  // This is the invariant behind the per-column z normalization option.
  Rng rng(4242);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 15 + rng.next_below(10);
    const std::size_t m = n + rng.next_below(6);
    std::string read_seq, window_seq;
    for (std::size_t i = 0; i < n; ++i) read_seq += "ACGT"[rng.next_below(4)];
    for (std::size_t j = 0; j < m; ++j) window_seq += "ACGT"[rng.next_below(4)];
    const Read read = make_read(read_seq, 25);
    const Pwm pwm = Pwm::from_read(read);
    const auto window = encode_sequence(window_seq);

    LibPosteriors lib(PhmmParams{}, BoundaryMode::kGlobal, pwm, window);
    ASSERT_TRUE(lib.ok);
    for (std::size_t j = 1; j <= m; ++j) {
      double column = 0.0;
      for (std::size_t i = 1; i <= n; ++i) {
        column += lib.at(kBfM, i, j) + lib.at(kBfGY, i, j);
      }
      EXPECT_NEAR(column, 1.0, 1e-9) << "j=" << j << " trial=" << trial;
    }
  }
}

// Parameter-grid property sweep: the invariants must hold at every corner
// of the parameter space, not just the defaults.
class PhmmParamGrid
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PhmmParamGrid, InvariantsHoldEverywhere) {
  const auto [gap_open, gap_extend, mismatch_mass] = GetParam();
  PhmmParams params;
  params.gap_open = gap_open;
  params.gap_extend = gap_extend;
  params.mismatch_mass = mismatch_mass;
  ASSERT_NO_THROW(params.validate());

  Rng rng(static_cast<std::uint64_t>(gap_open * 1e6) +
          static_cast<std::uint64_t>(gap_extend * 1e3) + 7);
  std::string read_seq, window_seq;
  for (int i = 0; i < 30; ++i) read_seq += "ACGT"[rng.next_below(4)];
  for (int j = 0; j < 45; ++j) window_seq += "ACGT"[rng.next_below(4)];
  const Read read = make_read(read_seq, 25);
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence(window_seq);

  for (const auto mode : {BoundaryMode::kGlobal, BoundaryMode::kSemiGlobal}) {
    LibPosteriors lib(params, mode, pwm, window);
    ASSERT_TRUE(lib.ok);
    EXPECT_TRUE(std::isfinite(lib.mats.log_likelihood));
    // Per-row posterior normalization.
    for (std::size_t i = 1; i <= read_seq.size(); ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j <= window_seq.size(); ++j) {
        const double m = lib.at(kBfM, i, j);
        const double gx = lib.at(kBfGX, i, j);
        const double gy = lib.at(kBfGY, i, j);
        EXPECT_GE(m, -1e-12);
        EXPECT_GE(gx, -1e-12);
        EXPECT_GE(gy, -1e-12);
        EXPECT_LE(m, 1.0 + 1e-9);
        row_sum += m + gx;
      }
      ASSERT_NEAR(row_sum, 1.0, 1e-9);
    }
    // Viterbi path never beats the marginal likelihood.
    const auto vit = viterbi_align(lib.hmm, pwm, window);
    if (std::isfinite(vit.log_prob)) {
      EXPECT_LE(vit.log_prob, lib.mats.log_likelihood + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PhmmParamGrid,
    ::testing::Combine(::testing::Values(0.005, 0.02, 0.1, 0.3),
                       ::testing::Values(0.1, 0.3, 0.7),
                       ::testing::Values(0.02, 0.08, 0.3)));

TEST(PairHmm, EmptyInputsFail) {
  const Pwm empty;
  AlignmentMatrices mats;
  PairHmm hmm((PhmmParams()));
  const auto window = encode_sequence("ACGT");
  EXPECT_FALSE(hmm.align(empty, window, mats));

  const Pwm pwm = Pwm::from_read(make_read("ACG"));
  EXPECT_FALSE(hmm.align(pwm, {}, mats));
}

TEST(PairHmm, AllNWindowStillAligns) {
  // N genome bases emit background probability; alignment exists.
  const Pwm pwm = Pwm::from_read(make_read("ACGT"));
  AlignmentMatrices mats;
  PairHmm hmm((PhmmParams()));
  const std::vector<std::uint8_t> window(10, kBaseN);
  EXPECT_TRUE(hmm.align(pwm, window, mats));
}

TEST(PhmmParams, ValidateRejectsBadValues) {
  PhmmParams p;
  p.gap_open = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = PhmmParams{};
  p.gap_open = 0.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = PhmmParams{};
  p.gap_extend = 1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = PhmmParams{};
  p.mismatch_mass = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  EXPECT_NO_THROW(PhmmParams{}.validate());
}

TEST(PhmmParams, EmissionSumsToOne) {
  const PhmmParams p;
  double sum = 0.0;
  for (std::uint8_t x = 0; x < 4; ++x) {
    for (std::uint8_t y = 0; y < 4; ++y) sum += p.emission(x, y);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// PWM

TEST(Pwm, RowsMatchBaseWeights) {
  Read read = make_read("ACGT");
  read.quals = {10, 20, 30, 40};
  const Pwm pwm = Pwm::from_read(read);
  ASSERT_EQ(pwm.length(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto expected = base_weights(read.bases[i], read.quals[i]);
    for (int k = 0; k < 4; ++k) {
      EXPECT_FLOAT_EQ(pwm.row(i)[static_cast<std::size_t>(k)],
                      expected[static_cast<std::size_t>(k)]);
    }
    EXPECT_EQ(pwm.called_base(i), read.bases[i]);
  }
}

TEST(Pwm, ReverseComplementPermutation) {
  Read read = make_read("AACG");
  read.quals = {10, 20, 30, 40};
  const Pwm fwd = Pwm::from_read(read);
  const Pwm rev = Pwm::from_read_reverse(read);
  ASSERT_EQ(rev.length(), 4u);
  const std::size_t n = 4;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint8_t b = 0; b < 4; ++b) {
      EXPECT_FLOAT_EQ(rev.row(i)[complement(b)], fwd.row(n - 1 - i)[b])
          << "i=" << i << " b=" << int(b);
    }
  }
}

TEST(Pwm, MixedEmissionsManualCheck) {
  Read read = make_read("A");
  read.quals = {60};  // essentially error-free
  const Pwm pwm = Pwm::from_read(read);
  const PhmmParams params;
  const auto mixed = pwm.mixed_emissions(params);
  ASSERT_EQ(mixed.size(), 5u);
  EXPECT_NEAR(mixed[0], params.emission(0, 0), 1e-4);  // vs genome A
  EXPECT_NEAR(mixed[1], params.emission(0, 1), 1e-4);  // vs genome C
  EXPECT_NEAR(mixed[4], 1.0 / 16.0, 1e-6);             // vs genome N
}

// ---------------------------------------------------------------------------
// Marginal condensation

TEST(Marginal, PerfectReadGivesCorrectBases) {
  Rng rng(55);
  std::string window_seq;
  for (int j = 0; j < 80; ++j) window_seq += "ACGT"[rng.next_below(4)];
  const std::size_t offset = 10;
  const std::size_t n = 40;
  const Read read = make_read(window_seq.substr(offset, n), 40);
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence(window_seq);

  PairHmm hmm((PhmmParams()));
  AlignmentMatrices mats;
  ASSERT_TRUE(hmm.align(pwm, window, mats));
  const auto result = condense_marginals(hmm, pwm, mats, MarginalOptions{});
  ASSERT_EQ(result.tracks.size(), window.size());

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = offset + i;
    const std::uint8_t expect = window[col];
    // The correct base dominates its column.
    float best = 0.0f;
    int best_k = -1;
    for (int k = 0; k < kNumTracks; ++k) {
      if (result.tracks[col][static_cast<std::size_t>(k)] > best) {
        best = result.tracks[col][static_cast<std::size_t>(k)];
        best_k = k;
      }
    }
    EXPECT_EQ(best_k, expect) << "col=" << col;
    EXPECT_GT(best, 0.5f);
  }
}

TEST(Marginal, ColumnMassNeverExceedsOne) {
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    std::string window_seq, read_seq;
    for (int j = 0; j < 60; ++j) window_seq += "ACGT"[rng.next_below(4)];
    for (int i = 0; i < 30; ++i) read_seq += "ACGT"[rng.next_below(4)];
    const Read read = make_read(read_seq, 20);
    const Pwm pwm = Pwm::from_read(read);
    const auto window = encode_sequence(window_seq);
    PairHmm hmm((PhmmParams()));
    AlignmentMatrices mats;
    if (!hmm.align(pwm, window, mats)) continue;
    const auto result = condense_marginals(hmm, pwm, mats, MarginalOptions{});
    for (const float mass : result.column_mass) {
      EXPECT_LE(mass, 1.0f + 1e-4f);
      EXPECT_GE(mass, 0.0f);
    }
  }
}

TEST(Marginal, ColumnNormalizationUnitSums) {
  Rng rng(78);
  std::string window_seq;
  for (int j = 0; j < 70; ++j) window_seq += "ACGT"[rng.next_below(4)];
  const Read read = make_read(window_seq.substr(15, 35), 35);
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence(window_seq);
  PairHmm hmm((PhmmParams()));
  AlignmentMatrices mats;
  ASSERT_TRUE(hmm.align(pwm, window, mats));

  MarginalOptions options;
  options.normalization = Normalization::kColumn;
  const auto result = condense_marginals(hmm, pwm, mats, options);
  for (std::size_t j = 0; j < result.tracks.size(); ++j) {
    float sum = 0.0f;
    for (int k = 0; k < kNumTracks; ++k) {
      sum += result.tracks[j][static_cast<std::size_t>(k)];
    }
    if (result.column_mass[j] > 0.0f) {
      EXPECT_NEAR(sum, 1.0f, 1e-4f) << "col " << j;
    } else {
      EXPECT_FLOAT_EQ(sum, 0.0f);
    }
  }
}

TEST(Marginal, CalledBaseModeRoutesAllMassToCall) {
  const Read read = make_read("AAAA", 10);  // low quality
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence("GGAAAAGG");
  PairHmm hmm((PhmmParams()));
  AlignmentMatrices mats;
  ASSERT_TRUE(hmm.align(pwm, window, mats));

  MarginalOptions options;
  options.prob_mode = ProbMode::kCalledBase;
  const auto result = condense_marginals(hmm, pwm, mats, options);
  // Only the A track and the gap track may carry mass.
  for (std::size_t j = 0; j < result.tracks.size(); ++j) {
    EXPECT_FLOAT_EQ(result.tracks[j][1], 0.0f);
    EXPECT_FLOAT_EQ(result.tracks[j][2], 0.0f);
    EXPECT_FLOAT_EQ(result.tracks[j][3], 0.0f);
  }
}

// ---------------------------------------------------------------------------
// Viterbi

TEST(Viterbi, BoundedByForwardLikelihood) {
  Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    std::string window_seq, read_seq;
    for (int j = 0; j < 50; ++j) window_seq += "ACGT"[rng.next_below(4)];
    for (int i = 0; i < 25; ++i) read_seq += "ACGT"[rng.next_below(4)];
    const Read read = make_read(read_seq, 30);
    const Pwm pwm = Pwm::from_read(read);
    const auto window = encode_sequence(window_seq);

    PairHmm hmm((PhmmParams()));
    AlignmentMatrices mats;
    ASSERT_TRUE(hmm.align(pwm, window, mats));
    const auto vit = viterbi_align(hmm, pwm, window);
    EXPECT_LE(vit.log_prob, mats.log_likelihood + 1e-9);
  }
}

TEST(Viterbi, PerfectMatchIsAllMatches) {
  Rng rng(93);
  std::string window_seq;
  for (int j = 0; j < 60; ++j) window_seq += "ACGT"[rng.next_below(4)];
  const std::size_t offset = 9;
  const Read read = make_read(window_seq.substr(offset, 30), 40);
  const Pwm pwm = Pwm::from_read(read);
  const auto window = encode_sequence(window_seq);

  PairHmm hmm((PhmmParams()));
  const auto vit = viterbi_align(hmm, pwm, window);
  ASSERT_EQ(vit.ops.size(), 30u);
  for (const auto op : vit.ops) EXPECT_EQ(op, AlignOp::kMatch);
  EXPECT_EQ(vit.window_begin, offset);
  EXPECT_EQ(vit.window_end, offset + 30);
  EXPECT_EQ(ops_to_cigar(vit.ops), "30M");
}

TEST(Viterbi, CigarRendering) {
  const std::vector<AlignOp> ops = {
      AlignOp::kMatch, AlignOp::kMatch, AlignOp::kReadGap,
      AlignOp::kGenomeGap, AlignOp::kGenomeGap, AlignOp::kMatch};
  EXPECT_EQ(ops_to_cigar(ops), "2M1I2D1M");
  EXPECT_EQ(ops_to_cigar({}), "");
}

// ---------------------------------------------------------------------------
// Needleman-Wunsch

TEST(Nw, PerfectMatchScore) {
  const Read read = make_read("ACGTACGT", 60);
  const auto window = encode_sequence("TTACGTACGTTT");
  NwParams params;
  params.quality_weighted = false;
  const auto result = nw_align(read, window, params);
  EXPECT_NEAR(result.score, 8.0, 1e-9);
  EXPECT_EQ(result.mismatches, 0);
  EXPECT_EQ(ops_to_cigar(result.ops), "8M");
  EXPECT_EQ(result.window_begin, 2u);
}

TEST(Nw, CountsMismatches) {
  const Read read = make_read("ACGTACGT", 30);
  const auto window = encode_sequence("ACGAACGT");  // T->A at index 3
  NwParams params;
  params.quality_weighted = false;
  params.free_genome_flanks = false;
  const auto result = nw_align(read, window, params);
  EXPECT_EQ(result.mismatches, 1);
  EXPECT_EQ(result.mismatch_quality_sum, 30);
  EXPECT_NEAR(result.score, 7.0 * 1.0 - 3.0, 1e-9);
}

TEST(Nw, FindsDeletion) {
  // Read is the window with 2 bases deleted.
  const Read read = make_read("ACGTACACGGTT", 40);
  const auto window = encode_sequence("ACGTACGGACGGTT");
  NwParams params;
  params.quality_weighted = false;
  params.free_genome_flanks = false;
  const auto result = nw_align(read, window, params);
  int genome_gaps = 0;
  for (const auto op : result.ops) {
    genome_gaps += op == AlignOp::kGenomeGap ? 1 : 0;
  }
  EXPECT_EQ(genome_gaps, 2);
}

TEST(Nw, QualityWeightingDiscountsLowQualityMismatch) {
  const Read low = make_read("ACGTACGT", 2);
  const Read high = make_read("ACGTACGT", 40);
  const auto perfect = encode_sequence("ACGTACGT");
  const auto mutated = encode_sequence("ACGAACGT");
  NwParams params;
  params.free_genome_flanks = false;
  // The score *drop* caused by the mismatch is smaller when the read base
  // is low quality: unreliable evidence should barely count either way.
  const double low_drop = nw_align(low, perfect, params).score -
                          nw_align(low, mutated, params).score;
  const double high_drop = nw_align(high, perfect, params).score -
                           nw_align(high, mutated, params).score;
  EXPECT_GT(high_drop, low_drop);
  EXPECT_GT(low_drop, 0.0);
}

TEST(Nw, EmptyInputs) {
  const Read read = make_read("ACGT");
  const auto result = nw_align(read, {}, NwParams{});
  EXPECT_TRUE(result.ops.empty());
  Read empty;
  const auto window = encode_sequence("ACGT");
  const auto result2 = nw_align(empty, window, NwParams{});
  EXPECT_TRUE(result2.ops.empty());
}

}  // namespace
}  // namespace gnumap

file(REMOVE_RECURSE
  "CMakeFiles/test_phmm_batched.dir/test_phmm_batched.cpp.o"
  "CMakeFiles/test_phmm_batched.dir/test_phmm_batched.cpp.o.d"
  "test_phmm_batched"
  "test_phmm_batched.pdb"
  "test_phmm_batched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phmm_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

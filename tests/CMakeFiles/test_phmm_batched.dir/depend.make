# Empty dependencies file for test_phmm_batched.
# This may be replaced when dependencies are built.

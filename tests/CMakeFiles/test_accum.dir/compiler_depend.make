# Empty compiler generated dependencies file for test_accum.
# This may be replaced when dependencies are built.

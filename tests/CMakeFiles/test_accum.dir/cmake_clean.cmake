file(REMOVE_RECURSE
  "CMakeFiles/test_accum.dir/test_accum.cpp.o"
  "CMakeFiles/test_accum.dir/test_accum.cpp.o.d"
  "test_accum"
  "test_accum.pdb"
  "test_accum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_phmm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_phmm.dir/test_phmm.cpp.o"
  "CMakeFiles/test_phmm.dir/test_phmm.cpp.o.d"
  "test_phmm"
  "test_phmm.pdb"
  "test_phmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

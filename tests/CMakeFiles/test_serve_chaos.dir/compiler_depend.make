# Empty compiler generated dependencies file for test_serve_chaos.
# This may be replaced when dependencies are built.

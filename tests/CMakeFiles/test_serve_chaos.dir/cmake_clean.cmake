file(REMOVE_RECURSE
  "CMakeFiles/test_serve_chaos.dir/test_serve_chaos.cpp.o"
  "CMakeFiles/test_serve_chaos.dir/test_serve_chaos.cpp.o.d"
  "test_serve_chaos"
  "test_serve_chaos.pdb"
  "test_serve_chaos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

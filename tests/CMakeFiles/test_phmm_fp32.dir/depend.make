# Empty dependencies file for test_phmm_fp32.
# This may be replaced when dependencies are built.

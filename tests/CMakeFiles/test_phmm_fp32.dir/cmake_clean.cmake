file(REMOVE_RECURSE
  "CMakeFiles/test_phmm_fp32.dir/test_phmm_fp32.cpp.o"
  "CMakeFiles/test_phmm_fp32.dir/test_phmm_fp32.cpp.o.d"
  "test_phmm_fp32"
  "test_phmm_fp32.pdb"
  "test_phmm_fp32[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phmm_fp32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/test_util[1]_include.cmake")
include("/root/repo/tests/test_obs[1]_include.cmake")
include("/root/repo/tests/test_genome[1]_include.cmake")
include("/root/repo/tests/test_io[1]_include.cmake")
include("/root/repo/tests/test_index[1]_include.cmake")
include("/root/repo/tests/test_phmm[1]_include.cmake")
include("/root/repo/tests/test_phmm_batched[1]_include.cmake")
include("/root/repo/tests/test_phmm_fp32[1]_include.cmake")
include("/root/repo/tests/test_accum[1]_include.cmake")
include("/root/repo/tests/test_stats[1]_include.cmake")
include("/root/repo/tests/test_mpsim[1]_include.cmake")
include("/root/repo/tests/test_sim[1]_include.cmake")
include("/root/repo/tests/test_core[1]_include.cmake")
include("/root/repo/tests/test_stream[1]_include.cmake")
include("/root/repo/tests/test_dist[1]_include.cmake")
include("/root/repo/tests/test_fault[1]_include.cmake")
include("/root/repo/tests/test_baseline[1]_include.cmake")
include("/root/repo/tests/test_integration[1]_include.cmake")
include("/root/repo/tests/test_sam[1]_include.cmake")
include("/root/repo/tests/test_serve[1]_include.cmake")
include("/root/repo/tests/test_serve_chaos[1]_include.cmake")

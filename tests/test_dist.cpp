// Tests for the two distributed modes: agreement with the serial pipeline
// and communication accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <sstream>

#include "gnumap/core/dist_modes.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

struct Workload {
  Genome ref;
  SnpCatalog catalog;
  std::vector<Read> reads;
};

Workload make_workload(std::uint64_t length = 40000, double coverage = 12.0) {
  ReferenceGenOptions ref_options;
  ref_options.length = length;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  Workload w;
  w.ref = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 20;
  w.catalog = generate_catalog(w.ref, catalog_options);
  const Genome individual = apply_catalog(w.ref, w.catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  return w;
}

PipelineConfig test_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  return config;
}

std::set<std::uint64_t> positions(const std::vector<SnpCall>& calls) {
  std::set<std::uint64_t> out;
  for (const auto& call : calls) out.insert(call.position);
  return out;
}

class ReadPartitionRanks : public ::testing::TestWithParam<int> {};

TEST_P(ReadPartitionRanks, MatchesSerialCalls) {
  const Workload w = make_workload();
  const PipelineConfig config = test_config();
  const auto serial = run_pipeline(w.ref, w.reads, config);

  DistOptions options;
  options.ranks = GetParam();
  options.mode = DistMode::kReadPartition;
  options.serialize_compute = false;  // keep the test fast
  const auto dist = run_distributed(w.ref, w.reads, config, options);

  EXPECT_EQ(positions(serial.calls), positions(dist.calls));
  EXPECT_EQ(dist.stats.reads_total, serial.stats.reads_total);
  EXPECT_EQ(dist.stats.reads_mapped, serial.stats.reads_mapped);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ReadPartitionRanks,
                         ::testing::Values(1, 2, 3, 5));

class GenomePartitionRanks : public ::testing::TestWithParam<int> {};

TEST_P(GenomePartitionRanks, RecoversSnpsAcrossSegmentBoundaries) {
  const Workload w = make_workload();
  PipelineConfig config = test_config();

  DistOptions options;
  options.ranks = GetParam();
  options.mode = DistMode::kGenomePartition;
  options.serialize_compute = false;
  options.batch_size = 128;
  const auto dist = run_distributed(w.ref, w.reads, config, options);

  const auto eval = evaluate_calls(dist.calls, w.catalog);
  EXPECT_GT(eval.recall(), 0.8) << "tp=" << eval.tp << " fn=" << eval.fn;
  EXPECT_GT(eval.precision(), 0.8) << "fp=" << eval.fp;
}

TEST_P(GenomePartitionRanks, AgreesWithSerialOnCleanData) {
  const Workload w = make_workload();
  const PipelineConfig config = test_config();
  const auto serial = run_pipeline(w.ref, w.reads, config);

  DistOptions options;
  options.ranks = GetParam();
  options.mode = DistMode::kGenomePartition;
  options.serialize_compute = false;
  const auto dist = run_distributed(w.ref, w.reads, config, options);

  // Weight pruning is applied locally per rank, so the accumulated masses
  // can differ slightly from serial; the call *sets* must still agree on
  // this clean workload.
  const auto serial_set = positions(serial.calls);
  const auto dist_set = positions(dist.calls);
  std::set<std::uint64_t> symmetric_difference;
  std::set_symmetric_difference(
      serial_set.begin(), serial_set.end(), dist_set.begin(), dist_set.end(),
      std::inserter(symmetric_difference, symmetric_difference.begin()));
  EXPECT_LE(symmetric_difference.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, GenomePartitionRanks,
                         ::testing::Values(2, 3, 4, 6));

TEST(DistModes, RankLocalTsvSpliceIsByteIdenticalToRootRender) {
  // Both modes assemble DistResult::tsv from rank-local formatting; the
  // document must be byte-identical to rendering the final call list at
  // the root (which is what the serial pipeline would emit for the same
  // calls).  Genome-partition exercises the rank-order body splice,
  // read-partition the rank-0 self-render.
  const Workload w = make_workload();
  const PipelineConfig config = test_config();
  for (const DistMode mode :
       {DistMode::kReadPartition, DistMode::kGenomePartition}) {
    DistOptions options;
    options.ranks = 3;
    options.mode = mode;
    options.serialize_compute = false;
    options.batch_size = 128;
    const auto dist = run_distributed(w.ref, w.reads, config, options);
    ASSERT_FALSE(dist.calls.empty());
    std::ostringstream expected;
    write_snps_tsv(expected, dist.calls);
    EXPECT_EQ(dist.tsv, expected.str())
        << (mode == DistMode::kReadPartition ? "read" : "genome")
        << "-partition";
  }
}

TEST(DistModes, SingleRankGenomePartitionMatchesSerial) {
  const Workload w = make_workload(25000, 10.0);
  const PipelineConfig config = test_config();
  const auto serial = run_pipeline(w.ref, w.reads, config);

  DistOptions options;
  options.ranks = 1;
  options.mode = DistMode::kGenomePartition;
  options.serialize_compute = false;
  const auto dist = run_distributed(w.ref, w.reads, config, options);
  EXPECT_EQ(positions(serial.calls), positions(dist.calls));
}

TEST(DistModes, SnpExactlyOnSegmentBoundaryIsCalledOnce) {
  // Plant SNPs straddling every segment boundary of a 4-rank partition and
  // verify each is called exactly once (margins overlap, cores do not).
  ReferenceGenOptions ref_options;
  ref_options.length = 40000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  const Genome ref = generate_reference(ref_options);

  const int ranks = 4;
  const std::uint64_t seg = ref.padded_size() / ranks;
  SnpCatalog catalog;
  // Offsets are spread out: directly adjacent complementary SNPs create a
  // genuine alignment ambiguity (a 1-base shift plus gaps explains them as
  // well as 3 mismatches) that even the serial pipeline dilutes over; that
  // is not what this test probes.
  for (int r = 1; r < ranks; ++r) {
    for (const std::int64_t offset : {-7, 0, 7}) {
      const auto pos =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(seg * r) + offset);
      if (pos >= ref.num_bases()) continue;
      CatalogEntry entry;
      entry.contig = "chrSim";
      entry.position = pos;
      entry.ref = ref.at(pos);
      if (entry.ref >= 4) continue;
      entry.alt = static_cast<std::uint8_t>(entry.ref ^ 2);  // transition
      catalog.push_back(entry);
    }
  }
  ASSERT_GE(catalog.size(), 6u);

  const Genome individual = apply_catalog(ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 14.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  DistOptions options;
  options.ranks = ranks;
  options.mode = DistMode::kGenomePartition;
  options.serialize_compute = false;
  const auto dist = run_distributed(ref, reads, test_config(), options);

  // Each truth site appears at most once in the gathered call list.
  std::map<std::uint64_t, int> call_counts;
  for (const auto& call : dist.calls) call_counts[call.position] += 1;
  for (const auto& [pos, count] : call_counts) {
    EXPECT_EQ(count, 1) << "position " << pos << " called " << count
                        << " times";
  }
  const auto eval = evaluate_calls(dist.calls, catalog);
  EXPECT_GT(eval.recall(), 0.7) << "tp=" << eval.tp << " fn=" << eval.fn;
}

TEST(DistModes, ReadPartitionCommVolumeScalesWithGenome) {
  const Workload w = make_workload(25000, 6.0);
  const PipelineConfig config = test_config();
  DistOptions options;
  options.ranks = 4;
  options.mode = DistMode::kReadPartition;
  options.serialize_compute = false;
  const auto dist = run_distributed(w.ref, w.reads, config, options);

  // The dominant traffic is the accumulator reduction: non-root ranks send
  // at least one genome-sized buffer (20 bytes/position for NORM).
  const std::uint64_t genome_bytes = w.ref.padded_size() * 20;
  std::uint64_t total_sent = 0;
  for (const auto& cost : dist.costs) total_sent += cost.comm.bytes_sent;
  EXPECT_GE(total_sent, genome_bytes);  // at least the leaf sends
  EXPECT_GT(dist.costs[1].comm.bytes_sent, genome_bytes / 2);
}

TEST(DistModes, GenomePartitionBroadcastsReads) {
  const Workload w = make_workload(25000, 6.0);
  const PipelineConfig config = test_config();
  DistOptions options;
  options.ranks = 4;
  options.mode = DistMode::kGenomePartition;
  options.serialize_compute = false;
  const auto dist = run_distributed(w.ref, w.reads, config, options);

  // Every read's bases+quals cross the network at least once.
  std::uint64_t read_bytes = 0;
  for (const auto& read : w.reads) read_bytes += 2 * read.length();
  EXPECT_GT(dist.costs[0].comm.bytes_sent, read_bytes / 2);

  // Per-rank accumulators are segment-sized: much smaller than the genome.
  EXPECT_LT(dist.max_rank_accum_bytes, w.ref.padded_size() * 20 / 2);
}

TEST(DistModes, SerializedComputeProducesPerRankTimes) {
  const Workload w = make_workload(15000, 4.0);
  const PipelineConfig config = test_config();
  DistOptions options;
  options.ranks = 2;
  options.mode = DistMode::kReadPartition;
  options.serialize_compute = true;
  const auto dist = run_distributed(w.ref, w.reads, config, options);
  for (const auto& cost : dist.costs) {
    EXPECT_GT(cost.compute_seconds, 0.0);
  }
}

TEST(DistModes, RejectsBadOptions) {
  const Workload w = make_workload(15000, 2.0);
  DistOptions options;
  options.ranks = 0;
  EXPECT_THROW(run_distributed(w.ref, w.reads, test_config(), options),
               ConfigError);
}

class AccumKindDist : public ::testing::TestWithParam<AccumKind> {};

TEST_P(AccumKindDist, ReadPartitionReducesEveryKind) {
  const Workload w = make_workload(20000, 8.0);
  PipelineConfig config = test_config();
  config.accum_kind = GetParam();

  DistOptions options;
  options.ranks = 3;
  options.mode = DistMode::kReadPartition;
  options.serialize_compute = false;
  const auto dist = run_distributed(w.ref, w.reads, config, options);
  // All kinds must produce some calls on a mutated genome; exact accuracy
  // per kind is the subject of the Table III bench.
  if (GetParam() != AccumKind::kCentDisc) {
    const auto eval = evaluate_calls(dist.calls, w.catalog);
    EXPECT_GT(eval.recall(), 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AccumKindDist,
                         ::testing::Values(AccumKind::kNorm,
                                           AccumKind::kCharDisc,
                                           AccumKind::kCentDisc));

}  // namespace
}  // namespace gnumap

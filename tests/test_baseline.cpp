// Tests for the MAQ-like baseline mapper/caller.
#include <gtest/gtest.h>

#include "gnumap/baseline/maq_like.hpp"
#include "gnumap/core/evaluation.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

MaqLikeConfig test_config() {
  MaqLikeConfig config;
  config.index.k = 9;
  return config;
}

TEST(MaqLike, RecoversPlantedSnps) {
  ReferenceGenOptions ref_options;
  ref_options.length = 50000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  const Genome ref = generate_reference(ref_options);

  CatalogGenOptions catalog_options;
  catalog_options.count = 25;
  const auto catalog = generate_catalog(ref, catalog_options);
  const Genome individual = apply_catalog(ref, catalog);

  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const auto result = run_maq_like(ref, reads, test_config());
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_GT(eval.recall(), 0.75) << "tp=" << eval.tp << " fn=" << eval.fn;
  EXPECT_GT(eval.precision(), 0.8) << "fp=" << eval.fp;
  EXPECT_GT(result.stats.reads_mapped, result.stats.reads_total * 7 / 10);
}

TEST(MaqLike, NoSnpsOnCleanGenome) {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  const Genome ref = generate_reference(ref_options);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(ref, sim_options));
  const auto result = run_maq_like(ref, reads, test_config());
  EXPECT_LE(result.calls.size(), 2u);
}

TEST(MaqLike, DropsMultimappedReadsByDefault) {
  // Genome with two identical 600 bp copies: reads from inside a copy are
  // perfectly ambiguous and must be dropped (mapQ 0).
  Rng rng(5);
  std::string unit;
  for (int i = 0; i < 600; ++i) unit += "ACGT"[rng.next_below(4)];
  std::string filler;
  for (int i = 0; i < 2000; ++i) filler += "ACGT"[rng.next_below(4)];
  Genome g;
  g.add_contig("chr1", unit + filler + unit);

  ReadSimOptions sim_options;
  sim_options.coverage = 4.0;
  sim_options.indel_rate = 0.0;
  sim_options.error_rate_start = 0.0;
  sim_options.error_rate_end = 0.0;
  const auto sims = simulate_reads(g, sim_options);
  const auto reads = strip_metadata(sims);

  const auto dropped = run_maq_like(g, reads, test_config());
  EXPECT_GT(dropped.reads_dropped_multimapped, 0u);
  EXPECT_EQ(dropped.reads_random_assigned, 0u);

  MaqLikeConfig random_config = test_config();
  random_config.random_assign_multimapped = true;
  const auto assigned = run_maq_like(g, reads, random_config);
  EXPECT_EQ(assigned.reads_dropped_multimapped, 0u);
  EXPECT_GT(assigned.reads_random_assigned, 0u);
  EXPECT_GT(assigned.stats.reads_mapped, dropped.stats.reads_mapped);
}

TEST(MaqLike, MissesSnpsInPerfectRepeats) {
  // A SNP inside one copy of a perfect repeat is invisible to the baseline
  // (reads covering it are dropped as multimapped) — this is precisely the
  // weakness the paper's marginal-alignment approach addresses.
  Rng rng(7);
  std::string unit;
  for (int i = 0; i < 800; ++i) unit += "ACGT"[rng.next_below(4)];
  std::string filler;
  for (int i = 0; i < 3000; ++i) filler += "ACGT"[rng.next_below(4)];
  Genome ref;
  ref.add_contig("chr1", unit + filler + unit);

  // Plant one SNP in the middle of the first copy.
  SnpCatalog catalog;
  CatalogEntry entry;
  entry.contig = "chr1";
  entry.position = 400;
  entry.ref = ref.at(400);
  entry.alt = static_cast<std::uint8_t>((entry.ref + 2) % 4);
  catalog.push_back(entry);
  const Genome individual = apply_catalog(ref, catalog);

  ReadSimOptions sim_options;
  sim_options.coverage = 14.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));
  const auto result = run_maq_like(ref, reads, test_config());
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_EQ(eval.tp, 0u);  // the baseline cannot see it
}

TEST(MaqLike, ConsensusMarginCutoffControlsCalls) {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  const Genome ref = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 15;
  const auto catalog = generate_catalog(ref, catalog_options);
  const Genome individual = apply_catalog(ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  MaqLikeConfig loose = test_config();
  loose.min_consensus_margin = 20.0;
  MaqLikeConfig strict = test_config();
  strict.min_consensus_margin = 100000.0;  // absurd cutoff kills everything
  EXPECT_GT(run_maq_like(ref, reads, loose).calls.size(),
            run_maq_like(ref, reads, strict).calls.size());
  EXPECT_TRUE(run_maq_like(ref, reads, strict).calls.empty());
}

TEST(MaqLike, SharedIndexValidated) {
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  const Genome ref = generate_reference(ref_options);
  MaqLikeConfig config = test_config();
  HashIndexOptions other;
  other.k = 10;
  const HashIndex wrong_k(ref, other);
  EXPECT_THROW(run_maq_like(ref, {}, config, &wrong_k), ConfigError);

  const HashIndex right(ref, config.index);
  EXPECT_NO_THROW(run_maq_like(ref, {}, config, &right));
}

TEST(MaqLike, EmptyReadsProduceNothing) {
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  const Genome ref = generate_reference(ref_options);
  const auto result = run_maq_like(ref, {}, test_config());
  EXPECT_TRUE(result.calls.empty());
  EXPECT_EQ(result.stats.reads_total, 0u);
}

}  // namespace
}  // namespace gnumap

// Unit tests for gnumap/index: k-mer packing, the genomic hash table, and
// seed-and-vote candidate identification.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/index/hash_index.hpp"
#include "gnumap/index/kmer.hpp"
#include "gnumap/index/seeder.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {
namespace {

// ---------------------------------------------------------------------------
// K-mers

TEST(Kmer, PackUnpackRoundTrip) {
  Rng rng(3);
  for (int k = 4; k <= 13; ++k) {
    std::vector<std::uint8_t> bases(static_cast<std::size_t>(k));
    for (auto& b : bases) b = static_cast<std::uint8_t>(rng.next_below(4));
    const auto packed = pack_kmer(bases, k);
    ASSERT_TRUE(packed.has_value());
    std::vector<std::uint8_t> unpacked(static_cast<std::size_t>(k));
    unpack_kmer(*packed, k, unpacked.data());
    EXPECT_EQ(unpacked, bases) << "k=" << k;
  }
}

TEST(Kmer, NBlocksPacking) {
  const auto bases = encode_sequence("ACGNT");
  EXPECT_FALSE(pack_kmer(bases, 5).has_value());
  EXPECT_FALSE(pack_kmer(std::span(bases).subspan(2), 3).has_value());
  EXPECT_TRUE(pack_kmer(bases, 3).has_value());
}

TEST(Kmer, TooShortSequence) {
  const auto bases = encode_sequence("AC");
  EXPECT_FALSE(pack_kmer(bases, 3).has_value());
}

TEST(Kmer, RollMatchesRepack) {
  const auto bases = encode_sequence("ACGTACGGTTCA");
  const int k = 5;
  auto kmer = *pack_kmer(bases, k);
  for (std::size_t i = 1; i + k <= bases.size(); ++i) {
    kmer = roll_kmer(kmer, bases[i + k - 1], k);
    EXPECT_EQ(kmer, *pack_kmer(std::span(bases).subspan(i), k)) << i;
  }
}

TEST(Kmer, RevCompInvolution) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const int k = 4 + static_cast<int>(rng.next_below(10));
    const Kmer kmer = rng.next_u64() & ((Kmer{1} << (2 * k)) - 1);
    EXPECT_EQ(revcomp_kmer(revcomp_kmer(kmer, k), k), kmer);
  }
}

TEST(Kmer, RevCompMatchesSequence) {
  const auto bases = encode_sequence("AACGGT");
  const auto rc = reverse_complement(bases);
  EXPECT_EQ(revcomp_kmer(*pack_kmer(bases, 6), 6), *pack_kmer(rc, 6));
}

// ---------------------------------------------------------------------------
// Hash index

Genome small_genome() {
  Genome g;
  g.add_contig("chr1", "ACGTACGTAAACCCGGGTTTACGT");
  return g;
}

TEST(HashIndex, FindsEveryOccurrence) {
  const Genome g = small_genome();
  HashIndexOptions options;
  options.k = 4;
  const HashIndex index(g, options);

  const auto acgt = *pack_kmer(encode_sequence("ACGT"), 4);
  const auto hits = index.lookup(acgt);
  // ACGT occurs at 0, 4, 20.
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 4u);
  EXPECT_EQ(hits[2], 20u);
}

TEST(HashIndex, AbsentKmerEmpty) {
  const Genome g = small_genome();
  HashIndexOptions options;
  options.k = 4;
  const HashIndex index(g, options);
  // TTTT does not occur... wait, GGGTTT contains TTT only 3 long; check TGCA.
  const auto missing = *pack_kmer(encode_sequence("TGCA"), 4);
  EXPECT_TRUE(index.lookup(missing).empty());
  EXPECT_FALSE(index.is_repeat_masked(missing));
}

TEST(HashIndex, ExhaustiveAgainstNaiveScan) {
  Rng rng(17);
  std::string seq(500, 'A');
  for (auto& c : seq) c = "ACGT"[rng.next_below(4)];
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions options;
  options.k = 6;
  const HashIndex index(g, options);

  const auto codes = encode_sequence(seq);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t at = rng.next_below(seq.size() - 6);
    const auto kmer = *pack_kmer(std::span(codes).subspan(at), 6);
    // Naive scan.
    std::vector<GenomePos> expected;
    for (std::size_t i = 0; i + 6 <= codes.size(); ++i) {
      if (*pack_kmer(std::span(codes).subspan(i), 6) == kmer) {
        expected.push_back(i);
      }
    }
    const auto hits = index.lookup(kmer);
    ASSERT_EQ(hits.size(), expected.size());
    EXPECT_TRUE(std::equal(hits.begin(), hits.end(), expected.begin()));
  }
}

TEST(HashIndex, RepeatMasking) {
  // 50 copies of ACGT back to back: every 4-mer inside is highly repeated.
  std::string seq;
  for (int i = 0; i < 50; ++i) seq += "ACGT";
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions options;
  options.k = 4;
  options.max_positions = 10;
  const HashIndex index(g, options);
  const auto acgt = *pack_kmer(encode_sequence("ACGT"), 4);
  EXPECT_TRUE(index.lookup(acgt).empty());
  EXPECT_TRUE(index.is_repeat_masked(acgt));
}

TEST(HashIndex, RangeRestrictedBuild) {
  const Genome g = small_genome();
  HashIndexOptions options;
  options.k = 4;
  const HashIndex full(g, options);
  const HashIndex partial(g, options, 4, 12);
  const auto acgt = *pack_kmer(encode_sequence("ACGT"), 4);
  const auto hits = partial.lookup(acgt);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 4u);
  EXPECT_LE(partial.num_entries(), full.num_entries());
}

TEST(HashIndex, NeverIndexesAcrossN) {
  Genome g;
  g.add_contig("chr1", "ACGTNACGT");
  HashIndexOptions options;
  options.k = 4;
  const HashIndex index(g, options);
  // Windows overlapping the N (positions 1..4) must be absent.
  const auto cgtn = pack_kmer(encode_sequence("CGTA"), 4);
  ASSERT_TRUE(cgtn.has_value());
  EXPECT_TRUE(index.lookup(*cgtn).empty());
  const auto acgt = *pack_kmer(encode_sequence("ACGT"), 4);
  EXPECT_EQ(index.lookup(acgt).size(), 2u);
}

TEST(HashIndex, RejectsBadK) {
  const Genome g = small_genome();
  HashIndexOptions options;
  options.k = 3;
  EXPECT_THROW(HashIndex(g, options), ConfigError);
  options.k = 14;
  EXPECT_THROW(HashIndex(g, options), ConfigError);
}

TEST(HashIndex, EmptyGenome) {
  Genome g;
  g.add_contig("tiny", "AC");
  HashIndexOptions options;
  options.k = 10;
  const HashIndex index(g, options);
  EXPECT_EQ(index.num_entries(), 0u);
}

TEST(HashIndex, SaveLoadRoundTrip) {
  Rng rng(61);
  std::string seq(2000, 'A');
  for (auto& c : seq) c = "ACGT"[rng.next_below(4)];
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions options;
  options.k = 7;
  options.max_positions = 5;
  const HashIndex original(g, options);

  std::stringstream buffer;
  original.save(buffer);
  const HashIndex loaded = HashIndex::load(buffer);

  EXPECT_EQ(loaded.k(), original.k());
  EXPECT_EQ(loaded.num_entries(), original.num_entries());
  EXPECT_EQ(loaded.num_distinct_kmers(), original.num_distinct_kmers());
  for (Kmer kmer = 0; kmer < kmer_space(7); kmer += 13) {
    const auto a = original.lookup(kmer);
    const auto b = loaded.lookup(kmer);
    ASSERT_EQ(a.size(), b.size()) << kmer;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    EXPECT_EQ(original.is_repeat_masked(kmer), loaded.is_repeat_masked(kmer));
  }
}

TEST(HashIndex, LoadRejectsGarbage) {
  std::stringstream buffer("this is not an index");
  EXPECT_THROW(HashIndex::load(buffer), ParseError);
  std::stringstream empty;
  EXPECT_THROW(HashIndex::load(empty), ParseError);
}

TEST(HashIndex, LoadRejectsTruncation) {
  Genome g;
  g.add_contig("chr1", "ACGTACGTACGTAAAGGG");
  HashIndexOptions options;
  options.k = 4;
  const HashIndex original(g, options);
  std::stringstream buffer;
  original.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(HashIndex::load(truncated), ParseError);
}

// ---------------------------------------------------------------------------
// Seeder

Read make_read(const std::string& seq) {
  Read read;
  read.name = "r";
  read.bases = encode_sequence(seq);
  read.quals.assign(read.bases.size(), 40);
  return read;
}

TEST(Seeder, FindsPlantedForwardRead) {
  Rng rng(29);
  std::string seq(2000, 'A');
  for (auto& c : seq) c = "ACGT"[rng.next_below(4)];
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions iopt;
  iopt.k = 8;
  const HashIndex index(g, iopt);
  const Seeder seeder(index, SeederOptions{});

  const std::size_t origin = 700;
  const Read read = make_read(seq.substr(origin, 40));
  const auto candidates = seeder.candidates(read);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].diagonal, origin);
  EXPECT_FALSE(candidates[0].reverse);
}

TEST(Seeder, FindsPlantedReverseRead) {
  Rng rng(31);
  std::string seq(2000, 'A');
  for (auto& c : seq) c = "ACGT"[rng.next_below(4)];
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions iopt;
  iopt.k = 8;
  const HashIndex index(g, iopt);
  const Seeder seeder(index, SeederOptions{});

  const std::size_t origin = 1200;
  Read read = make_read(seq.substr(origin, 40));
  read.bases = reverse_complement(read.bases);
  const auto candidates = seeder.candidates(read);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].diagonal, origin);
  EXPECT_TRUE(candidates[0].reverse);
}

TEST(Seeder, ToleratesMismatches) {
  Rng rng(37);
  std::string seq(3000, 'A');
  for (auto& c : seq) c = "ACGT"[rng.next_below(4)];
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions iopt;
  iopt.k = 8;
  const HashIndex index(g, iopt);
  const Seeder seeder(index, SeederOptions{});

  const std::size_t origin = 500;
  std::string fragment = seq.substr(origin, 60);
  // Two mismatches spread apart still leave enough intact k-mers.
  fragment[15] = fragment[15] == 'A' ? 'C' : 'A';
  fragment[45] = fragment[45] == 'G' ? 'T' : 'G';
  const auto candidates = seeder.candidates(make_read(fragment));
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].diagonal, origin);
}

TEST(Seeder, RespectsMaxCandidates) {
  std::string seq;
  for (int i = 0; i < 200; ++i) seq += "ACGTACGTGG";
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions iopt;
  iopt.k = 8;
  iopt.max_positions = 100000;
  const HashIndex index(g, iopt);
  SeederOptions sopt;
  sopt.max_candidates = 5;
  const Seeder seeder(index, sopt);
  const auto candidates = seeder.candidates(make_read("ACGTACGTGGACGTACGTGG"));
  EXPECT_LE(candidates.size(), 5u);
}

TEST(Seeder, ShortReadYieldsNothing) {
  const Genome g = small_genome();
  HashIndexOptions iopt;
  iopt.k = 10;
  const HashIndex index(g, iopt);
  const Seeder seeder(index, SeederOptions{});
  EXPECT_TRUE(seeder.candidates(make_read("ACGT")).empty());
}

TEST(Seeder, VotesSortedDescending) {
  Rng rng(41);
  std::string seq(4000, 'A');
  for (auto& c : seq) c = "ACGT"[rng.next_below(4)];
  Genome g;
  g.add_contig("chr1", seq);
  HashIndexOptions iopt;
  iopt.k = 8;
  const HashIndex index(g, iopt);
  SeederOptions sopt;
  sopt.min_votes = 1;
  const Seeder seeder(index, sopt);
  const auto candidates = seeder.candidates(make_read(seq.substr(100, 50)));
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].votes, candidates[i].votes);
  }
}

}  // namespace
}  // namespace gnumap

// Fault-injection tests: communicator hardening (timeouts, abort-on-death,
// injected crashes) and checkpoint/restart recovery in both distributed
// modes, including chaos plans drawn from seeds.  Every test here must
// terminate even when the injected fault would naively deadlock a
// collective; the suite runs under a ctest-level timeout as a backstop.
#include <gtest/gtest.h>

#include <chrono>
#include <exception>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "gnumap/core/dist_modes.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/mpsim/communicator.hpp"
#include "gnumap/mpsim/cost_model.hpp"
#include "gnumap/mpsim/fault.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

// ---------------------------------------------------------------------------
// Communicator-level failure semantics.

TEST(FaultWorld, PeerDeathWakesBlockedReceiver) {
  // Rank 1 dies while rank 0 is blocked in recv on it: the world must wake
  // rank 0 (no deadlock) and rethrow rank 1's original exception.
  try {
    run_world(2, [](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.recv(1, 7);  // never sent
        FAIL() << "recv returned from a dead peer";
      } else {
        throw ConfigError("rank 1 exploded");
      }
    });
    FAIL() << "run_world did not rethrow";
  } catch (const ConfigError& e) {
    EXPECT_STREQ(e.what(), "rank 1 exploded");
  }
}

TEST(FaultWorld, RecvFromFinishedRankFailsFast) {
  // A rank that returned cleanly can never send again; waiting on it must
  // throw RankFailedError instead of hanging.
  const WorldRun run =
      run_world_collect(2, WorldOptions{}, [](Communicator& comm) {
        if (comm.rank() == 0) comm.recv(1, 7);
      });
  ASSERT_EQ(run.failed_rank, 0);
  ASSERT_TRUE(run.error);
  EXPECT_THROW(std::rethrow_exception(run.error), RankFailedError);
  EXPECT_EQ(run.stats[0].peer_failures_seen, 1u);
}

TEST(FaultWorld, RecvTimeoutThrowsCommError) {
  WorldOptions options;
  options.recv_timeout_seconds = 0.05;
  // Mutual recv with no matching sends: both ranks must time out (the
  // classic deadlock) instead of blocking forever.
  const WorldRun run = run_world_collect(2, options, [](Communicator& comm) {
    comm.recv(1 - comm.rank(), 9);
  });
  ASSERT_GE(run.failed_rank, 0);
  ASSERT_TRUE(run.error);
  EXPECT_THROW(std::rethrow_exception(run.error), CommError);
  EXPECT_EQ(run.stats[static_cast<std::size_t>(run.failed_rank)].recv_timeouts,
            1u);
}

TEST(FaultWorld, InjectedCrashAbortsWorld) {
  FaultState faults(FaultPlan().crash(1, 2));
  WorldOptions options;
  options.faults = &faults;
  const WorldRun run = run_world_collect(3, options, [](Communicator& comm) {
    for (int i = 0; i < 8; ++i) comm.barrier();
  });
  EXPECT_EQ(run.failed_rank, 1);
  ASSERT_TRUE(run.error);
  try {
    std::rethrow_exception(run.error);
    FAIL() << "no exception stored";
  } catch (const InjectedCrash& e) {
    EXPECT_EQ(e.rank(), 1);
  }
  EXPECT_EQ(faults.fired_count(), 1u);
}

TEST(FaultWorld, DroppedMessageTimesOutAndIsCountedAsSent) {
  FaultState faults(FaultPlan().drop(0, 0));
  WorldOptions options;
  options.faults = &faults;
  options.recv_timeout_seconds = 0.05;
  const WorldRun run = run_world_collect(2, options, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, {1, 2, 3});
      // Stay alive well past rank 1's timeout so the drop surfaces there as
      // a timeout, not as a peer-exit error (and without arming rank 0's
      // own timer, which could win the abort race).
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    } else {
      comm.recv(0, 5);
    }
  });
  EXPECT_EQ(run.failed_rank, 1);
  // The bytes hit the wire (sender pays) but never arrive.
  EXPECT_EQ(run.stats[0].messages_sent, 1u);
  EXPECT_EQ(run.stats[0].bytes_sent, 3u);
  EXPECT_EQ(run.stats[1].messages_received, 0u);
  EXPECT_EQ(run.stats[1].recv_timeouts, 1u);
  ASSERT_TRUE(run.error);
  EXPECT_THROW(std::rethrow_exception(run.error), CommError);
}

TEST(FaultWorld, DelayedMessageStillDelivered) {
  FaultState faults(FaultPlan().delay(0, 0, 0.01));
  WorldOptions options;
  options.faults = &faults;
  const WorldRun run = run_world_collect(2, options, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, {42});
    } else {
      EXPECT_EQ(comm.recv(0, 5), std::vector<std::uint8_t>{42});
    }
  });
  EXPECT_EQ(run.failed_rank, -1);
  EXPECT_FALSE(run.error);
}

TEST(FaultWorld, SlowComputeScalesAttributedTime) {
  FaultState faults(FaultPlan().slow(1, 3.0));
  WorldOptions options;
  options.faults = &faults;
  const WorldRun run = run_world_collect(2, options, [](Communicator& comm) {
    comm.compute_clock().add_seconds(1.0);
  });
  ASSERT_FALSE(run.error);
  EXPECT_DOUBLE_EQ(run.compute_seconds[0], 1.0);
  EXPECT_DOUBLE_EQ(run.compute_seconds[1], 3.0);
}

TEST(FaultPlanTest, RandomIsDeterministic) {
  const auto a = FaultPlan::random(17, 4);
  const auto b = FaultPlan::random(17, 4);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
  }
  EXPECT_FALSE(a.empty());
}

// ---------------------------------------------------------------------------
// End-to-end recovery: the pipeline under injected faults must produce the
// same SNP calls as the fault-free run.

struct Workload {
  Genome ref;
  SnpCatalog catalog;
  std::vector<Read> reads;
};

Workload make_workload(std::uint64_t length = 20000, double coverage = 6.0) {
  ReferenceGenOptions ref_options;
  ref_options.length = length;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  Workload w;
  w.ref = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 12;
  w.catalog = generate_catalog(w.ref, catalog_options);
  const Genome individual = apply_catalog(w.ref, w.catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  return w;
}

PipelineConfig test_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  return config;
}

std::set<std::uint64_t> positions(const std::vector<SnpCall>& calls) {
  std::set<std::uint64_t> out;
  for (const auto& call : calls) out.insert(call.position);
  return out;
}

void expect_identical_calls(const std::vector<SnpCall>& expected,
                            const std::vector<SnpCall>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].contig, actual[i].contig);
    EXPECT_EQ(expected[i].position, actual[i].position);
    EXPECT_EQ(expected[i].ref, actual[i].ref);
    EXPECT_EQ(expected[i].allele1, actual[i].allele1);
    EXPECT_EQ(expected[i].allele2, actual[i].allele2);
    // Restart replays from exact serialized state: bit-identical scores.
    EXPECT_EQ(expected[i].coverage, actual[i].coverage);
    EXPECT_EQ(expected[i].lrt_stat, actual[i].lrt_stat);
    EXPECT_EQ(expected[i].p_value, actual[i].p_value);
  }
}

DistOptions base_options(DistMode mode, int ranks) {
  DistOptions options;
  options.ranks = ranks;
  options.mode = mode;
  options.serialize_compute = false;  // keep the suite fast
  options.batch_size = 128;
  // recv_timeout_seconds is left at 0: fault-free runs wait forever (the
  // abort-on-death path still prevents deadlock) and fault runs pick the
  // generous default, so slow CI machines cannot trip false timeouts.
  return options;
}

TEST(FaultRecovery, ReadPartitionCrashRestartsFromCheckpoint) {
  const Workload w = make_workload();
  const PipelineConfig config = test_config();
  const auto clean =
      run_distributed(w.ref, w.reads, config,
                      base_options(DistMode::kReadPartition, 3));

  auto options = base_options(DistMode::kReadPartition, 3);
  options.faults.crash(1, 40);  // mid-shard, between checkpoints
  const auto faulty = run_distributed(w.ref, w.reads, config, options);

  EXPECT_EQ(faulty.recovery.attempts, 2);
  ASSERT_EQ(faulty.recovery.failed_ranks, std::vector<int>{1});
  expect_identical_calls(clean.calls, faulty.calls);
  EXPECT_EQ(faulty.stats.reads_total, clean.stats.reads_total);
  EXPECT_EQ(faulty.stats.reads_mapped, clean.stats.reads_mapped);
  // Recovery accounting: the aborted attempt's traffic and compute are
  // recorded, and the simulated wall-clock with recovery dominates the
  // fault-free makespan.
  ASSERT_EQ(faulty.attempt_costs.size(), 2u);
  const CostModelParams params;
  EXPECT_GE(simulated_makespan_with_recovery(faulty.attempt_costs, params),
            simulated_makespan(faulty.costs, params));
  const auto rc = recovery_cost(faulty.attempt_costs, params);
  EXPECT_EQ(rc.restarts, 1);
  EXPECT_EQ(faulty.recovery.redone_compute_seconds, rc.redone_compute_seconds);
}

TEST(FaultRecovery, GenomePartitionCrashRestartsFromCommonCheckpoint) {
  const Workload w = make_workload();
  const PipelineConfig config = test_config();
  const auto clean =
      run_distributed(w.ref, w.reads, config,
                      base_options(DistMode::kGenomePartition, 3));

  auto options = base_options(DistMode::kGenomePartition, 3);
  options.faults.crash(1, 5);  // during the second broadcast batch
  const auto faulty = run_distributed(w.ref, w.reads, config, options);

  EXPECT_EQ(faulty.recovery.attempts, 2);
  ASSERT_EQ(faulty.recovery.failed_ranks, std::vector<int>{1});
  expect_identical_calls(clean.calls, faulty.calls);
  EXPECT_EQ(faulty.stats.reads_total, clean.stats.reads_total);
  EXPECT_EQ(faulty.stats.reads_mapped, clean.stats.reads_mapped);
}

TEST(FaultRecovery, ReadPartitionReclaimRedistributesLostShard) {
  const Workload w = make_workload();
  const PipelineConfig config = test_config();
  const auto clean =
      run_distributed(w.ref, w.reads, config,
                      base_options(DistMode::kReadPartition, 3));

  auto options = base_options(DistMode::kReadPartition, 3);
  options.recovery = RecoveryPolicy::kReclaimReads;
  options.faults.crash(1, 40);
  const auto faulty = run_distributed(w.ref, w.reads, config, options);

  EXPECT_EQ(faulty.recovery.attempts, 2);
  // Graceful degradation: survivors absorb the lost shard, so every read is
  // still mapped exactly once and the call set matches (weights can differ
  // at rounding level from the different merge order, so compare sets).
  EXPECT_EQ(faulty.stats.reads_total, clean.stats.reads_total);
  EXPECT_EQ(faulty.stats.reads_mapped, clean.stats.reads_mapped);
  EXPECT_EQ(positions(clean.calls), positions(faulty.calls));
}

TEST(FaultRecovery, DroppedReduceMessageRetriesAndMatches) {
  const Workload w = make_workload();
  const PipelineConfig config = test_config();
  const auto clean =
      run_distributed(w.ref, w.reads, config,
                      base_options(DistMode::kReadPartition, 2));

  auto options = base_options(DistMode::kReadPartition, 2);
  options.recv_timeout_seconds = 0.5;
  options.faults.drop(1, 0);  // rank 1's reduce contribution is lost
  const auto faulty = run_distributed(w.ref, w.reads, config, options);

  EXPECT_EQ(faulty.recovery.attempts, 2);
  expect_identical_calls(clean.calls, faulty.calls);
  EXPECT_GT(faulty.recovery.resent_bytes, 0u);
}

TEST(FaultRecovery, PermanentFaultExhaustsAttemptsAndRethrows) {
  const Workload w = make_workload(12000, 3.0);
  auto options = base_options(DistMode::kReadPartition, 2);
  options.max_attempts = 2;
  // Two crashes on the same rank: the second fires on the restarted
  // attempt, exhausting the budget.
  options.faults.crash(1, 10).crash(1, 12);
  EXPECT_THROW(run_distributed(w.ref, w.reads, test_config(), options),
               CommError);
}

TEST(FaultRecovery, FaultFreeCommCountsUnchangedByMachinery) {
  const Workload w = make_workload(12000, 4.0);
  const PipelineConfig config = test_config();
  for (const DistMode mode :
       {DistMode::kReadPartition, DistMode::kGenomePartition}) {
    const auto plain =
        run_distributed(w.ref, w.reads, config, base_options(mode, 3));
    // A delay-only plan exercises the full fault path (timeouts armed,
    // checkpoints taken) without aborting anything: every per-rank counter
    // must match the plain run exactly.
    auto options = base_options(mode, 3);
    options.faults.delay(0, 0, 1e-4);
    const auto delayed = run_distributed(w.ref, w.reads, config, options);
    EXPECT_EQ(delayed.recovery.attempts, 1);
    for (int r = 0; r < 3; ++r) {
      const auto& a = plain.costs[static_cast<std::size_t>(r)].comm;
      const auto& b = delayed.costs[static_cast<std::size_t>(r)].comm;
      EXPECT_EQ(a.messages_sent, b.messages_sent) << "rank " << r;
      EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "rank " << r;
      EXPECT_EQ(a.messages_received, b.messages_received) << "rank " << r;
      EXPECT_EQ(a.bytes_received, b.bytes_received) << "rank " << r;
    }
    expect_identical_calls(plain.calls, delayed.calls);
  }
}

// Chaos: seeded random plans (crash + drop + delay) against both modes must
// converge to the fault-free calls within the attempt budget — and, because
// every blocking wait is bounded, must terminate.
class ChaosPlans
    : public ::testing::TestWithParam<std::tuple<DistMode, std::uint64_t>> {};

TEST_P(ChaosPlans, ConvergesToFaultFreeCalls) {
  const auto [mode, seed] = GetParam();
  const Workload w = make_workload(15000, 5.0);
  const PipelineConfig config = test_config();
  const int ranks = 3;
  const auto clean =
      run_distributed(w.ref, w.reads, config, base_options(mode, ranks));

  auto options = base_options(mode, ranks);
  RandomFaultOptions chaos;
  chaos.max_step = 40;
  chaos.max_send = 8;
  chaos.max_delay_seconds = 2e-3;
  options.faults = FaultPlan::random(seed, ranks, chaos);
  options.recv_timeout_seconds = 0.75;
  options.max_attempts = 10;
  const auto faulty = run_distributed(w.ref, w.reads, config, options);

  EXPECT_EQ(positions(clean.calls), positions(faulty.calls))
      << "mode=" << static_cast<int>(mode) << " seed=" << seed
      << " attempts=" << faulty.recovery.attempts;
  EXPECT_EQ(faulty.stats.reads_total, clean.stats.reads_total);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ChaosPlans,
    ::testing::Combine(::testing::Values(DistMode::kReadPartition,
                                         DistMode::kGenomePartition),
                       ::testing::Values(1u, 2u, 3u, 4u)));

// ---------------------------------------------------------------------------
// Negative paths: malformed input and silent peers produce the exact error
// types the CLIs report, not hangs or aborts.

TEST(NegativePaths, TruncatedFastqThrowsParseError) {
  std::istringstream in("@r1\nACGT\n+");  // separator present, quals missing
  try {
    read_fastq(in);
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated record"),
              std::string::npos);
  }
}

TEST(NegativePaths, BadCatalogLineThrowsParseError) {
  std::istringstream in("chr1\t100\tA\n");  // only 3 fields
  try {
    read_catalog(in);
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("expected >=4"), std::string::npos);
  }
}

TEST(NegativePaths, BadCatalogAlleleThrowsParseError) {
  std::istringstream in("chr1\t100\tA\tXY\n");
  EXPECT_THROW(read_catalog(in), ParseError);
}

TEST(NegativePaths, RecvTimeoutIsCommErrorNotRankFailure) {
  WorldOptions options;
  options.recv_timeout_seconds = 0.05;
  const WorldRun run = run_world_collect(2, options, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.recv(1, 3);  // rank 1 stays alive but silent, then blocks too
    }
    comm.barrier();
  });
  ASSERT_TRUE(run.error);
  try {
    std::rethrow_exception(run.error);
    FAIL() << "no exception stored";
  } catch (const RankFailedError&) {
    FAIL() << "timeout misreported as peer death";
  } catch (const CommError&) {
    // expected: the bounded wait expired
  }
}

}  // namespace
}  // namespace gnumap

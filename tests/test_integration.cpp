// Cross-module integration tests: multi-contig genomes, file-based
// round-trips, determinism, and degenerate-input robustness.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"

namespace gnumap {
namespace {

namespace fs = std::filesystem;

PipelineConfig test_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  return config;
}

TEST(Integration, MultiContigGenomeCallsOnEveryContig) {
  // Three contigs of different sizes; catalog spread across all of them.
  Genome reference;
  Rng rng(321);
  for (const auto& [name, size] :
       std::vector<std::pair<std::string, std::size_t>>{
           {"chr1", 30000}, {"chr2", 20000}, {"chr3", 12000}}) {
    std::string seq(size, 'A');
    for (auto& c : seq) c = "ACGT"[rng.next_below(4)];
    reference.add_contig(name, seq);
  }

  CatalogGenOptions catalog_options;
  catalog_options.count = 30;
  const auto catalog = generate_catalog(reference, catalog_options);
  // Truth must touch all three contigs.
  std::set<std::string> contigs;
  for (const auto& entry : catalog) contigs.insert(entry.contig);
  ASSERT_EQ(contigs.size(), 3u);

  const Genome individual = apply_catalog(reference, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const auto result = run_pipeline(reference, reads, test_config());
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_GT(eval.recall(), 0.8);
  EXPECT_GT(eval.precision(), 0.85);

  // Calls report contig-local coordinates with the right names.
  std::set<std::string> called_contigs;
  for (const auto& call : result.calls) called_contigs.insert(call.contig);
  EXPECT_GE(called_contigs.size(), 2u);
  for (const auto& call : result.calls) {
    EXPECT_TRUE(call.contig == "chr1" || call.contig == "chr2" ||
                call.contig == "chr3");
  }
}

TEST(Integration, FileRoundTripMatchesInMemory) {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  ref_options.n_fraction = 0.0;
  const Genome reference = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 12;
  const auto catalog = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  // Serialize reference + reads to disk and load back.
  const fs::path dir =
      fs::temp_directory_path() / "gnumap_test_roundtrip";
  fs::create_directories(dir);
  std::string seq;
  for (std::uint64_t i = 0; i < reference.contig_size(0); ++i) {
    seq += decode_base(reference.at(i));
  }
  write_fasta_file((dir / "ref.fa").string(), {{"chrSim", seq}});
  write_fastq_file((dir / "reads.fq").string(), reads);

  const Genome loaded_ref = genome_from_fasta_file((dir / "ref.fa").string());
  const auto loaded_reads = read_fastq_file((dir / "reads.fq").string());
  ASSERT_EQ(loaded_ref.num_bases(), reference.num_bases());
  ASSERT_EQ(loaded_reads.size(), reads.size());

  const auto mem_result = run_pipeline(reference, reads, test_config());
  const auto file_result =
      run_pipeline(loaded_ref, loaded_reads, test_config());
  ASSERT_EQ(mem_result.calls.size(), file_result.calls.size());
  for (std::size_t i = 0; i < mem_result.calls.size(); ++i) {
    EXPECT_EQ(mem_result.calls[i].position, file_result.calls[i].position);
    EXPECT_EQ(mem_result.calls[i].allele1, file_result.calls[i].allele1);
  }
  fs::remove_all(dir);
}

TEST(Integration, PipelineIsDeterministic) {
  ReferenceGenOptions ref_options;
  ref_options.length = 25000;
  const Genome reference = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 10;
  const auto catalog = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const auto a = run_pipeline(reference, reads, test_config());
  const auto b = run_pipeline(reference, reads, test_config());
  ASSERT_EQ(a.calls.size(), b.calls.size());
  for (std::size_t i = 0; i < a.calls.size(); ++i) {
    EXPECT_EQ(a.calls[i].position, b.calls[i].position);
    EXPECT_DOUBLE_EQ(a.calls[i].lrt_stat, b.calls[i].lrt_stat);
  }
}

TEST(Integration, DegenerateReadsAreHandled) {
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  const Genome reference = generate_reference(ref_options);

  std::vector<Read> reads;
  // Empty read.
  reads.push_back(Read{"empty", {}, {}});
  // Shorter than k.
  reads.push_back(Read{"short", encode_sequence("ACGT"), {40, 40, 40, 40}});
  // All N.
  Read all_n;
  all_n.name = "ns";
  all_n.bases.assign(62, kBaseN);
  all_n.quals.assign(62, 2);
  reads.push_back(all_n);
  // Quals missing (shorter than bases) — mapper treats missing as Q0.
  Read no_quals;
  no_quals.name = "noq";
  for (int i = 0; i < 62; ++i) {
    no_quals.bases.push_back(static_cast<std::uint8_t>(i % 4));
  }
  reads.push_back(no_quals);

  const auto result = run_pipeline(reference, reads, test_config());
  EXPECT_EQ(result.stats.reads_mapped, 0u);
  EXPECT_TRUE(result.calls.empty());
}

TEST(Integration, EmptyReadSetProducesNoCalls) {
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  const Genome reference = generate_reference(ref_options);
  const auto result = run_pipeline(reference, {}, test_config());
  EXPECT_TRUE(result.calls.empty());
  EXPECT_EQ(result.stats.reads_total, 0u);
}

TEST(Integration, ReadsLongerThanTypicalWindowStillMap) {
  // 150 bp reads (beyond the paper's 62) exercise the scaling path.
  ReferenceGenOptions ref_options;
  ref_options.length = 40000;
  ref_options.n_fraction = 0.0;
  const Genome reference = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 10;
  const auto catalog = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, catalog);
  ReadSimOptions sim_options;
  sim_options.read_length = 150;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const auto result = run_pipeline(reference, reads, test_config());
  EXPECT_GT(result.stats.reads_mapped, result.stats.reads_total * 8 / 10);
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_GT(eval.recall(), 0.7);
}

TEST(Integration, HighErrorReadsDegradeGracefully) {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  const Genome reference = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 10;
  const auto catalog = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, catalog);

  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  sim_options.error_rate_start = 0.05;
  sim_options.error_rate_end = 0.12;  // very noisy platform
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const auto result = run_pipeline(reference, reads, test_config());
  // Precision must hold even when recall suffers: the LRT's background
  // comparison is exactly what filters error noise.
  const auto eval = evaluate_calls(result.calls, catalog);
  if (eval.tp + eval.fp > 0) {
    EXPECT_GT(eval.precision(), 0.7);
  }
}

TEST(Integration, DeletionAccumulatesGapEvidence) {
  // Delete one base from the individual's genome: reads spanning the site
  // align with a genome gap there, so the gap track at the deleted
  // reference position must carry substantially more mass than elsewhere,
  // and the LRT should call the gap allele.
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  ref_options.n_fraction = 0.0;
  ref_options.repeat_fraction = 0.0;
  const Genome reference = generate_reference(ref_options);
  // Pick a deletion site whose neighbors differ from it: deleting a base
  // inside a homopolymer (e.g. the first G of "GG") leaves the gap position
  // ambiguous, so the posterior splits across the run and no single
  // position accumulates majority gap mass — correct marginal-alignment
  // behaviour, but not what this test probes.
  std::uint64_t deleted_pos = 10000;
  while (reference.at(deleted_pos) == reference.at(deleted_pos - 1) ||
         reference.at(deleted_pos) == reference.at(deleted_pos + 1)) {
    ++deleted_pos;
  }

  // Individual = reference minus one base.
  std::string individual_seq;
  for (GenomePos pos = 0; pos < reference.num_bases(); ++pos) {
    if (pos == deleted_pos) continue;
    individual_seq += decode_base(reference.at(pos));
  }
  Genome individual;
  individual.add_contig("chrSim", individual_seq);

  ReadSimOptions sim_options;
  sim_options.coverage = 20.0;
  sim_options.indel_rate = 0.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  PipelineConfig config = test_config();
  std::unique_ptr<Accumulator> accum;
  const auto result =
      run_pipeline_with_accumulator(reference, reads, config, &accum);
  ASSERT_NE(accum, nullptr);

  const float gap_at_site = accum->counts(deleted_pos)[kGapTrack];
  // Background gap mass at a handful of control positions.
  float background = 0.0f;
  for (const GenomePos pos : {5000ull, 7500ull, 12500ull, 15000ull}) {
    background = std::max(background, accum->counts(pos)[kGapTrack]);
  }
  EXPECT_GT(gap_at_site, 5.0f * (background + 0.5f))
      << "gap=" << gap_at_site << " background=" << background;

  // The caller reports a gap-allele site at (or immediately adjacent to)
  // the deletion: with homopolymer context the PHMM may place the genome
  // gap one base off.
  bool called_deletion = false;
  for (const auto& call : result.calls) {
    const auto distance = call.position > deleted_pos
                              ? call.position - deleted_pos
                              : deleted_pos - call.position;
    if (distance <= 1 &&
        (call.allele1 == kGapTrack || call.allele2 == kGapTrack)) {
      called_deletion = true;
    }
  }
  EXPECT_TRUE(called_deletion) << "calls near the deletion: ";
}

TEST(Integration, AccumulatorOutputMatchesCoverage) {
  // The accumulated mass at a well-covered position approximates the local
  // read depth (the paper's z vectors sum to ~coverage).
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  ref_options.n_fraction = 0.0;
  ref_options.repeat_fraction = 0.0;
  const Genome reference = generate_reference(ref_options);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(reference, sim_options));

  std::unique_ptr<Accumulator> accum;
  run_pipeline_with_accumulator(reference, reads, test_config(), &accum);
  ASSERT_NE(accum, nullptr);

  double total_mass = 0.0;
  std::uint64_t sampled = 0;
  for (GenomePos pos = 1000; pos + 1000 < reference.num_bases();
       pos += 97) {
    const auto counts = accum->counts(pos);
    for (const float v : counts) total_mass += v;
    ++sampled;
  }
  const double mean_mass = total_mass / static_cast<double>(sampled);
  EXPECT_NEAR(mean_mass, 10.0, 2.5);
}

}  // namespace
}  // namespace gnumap

// Tests for the three genome accumulation layouts (Section VI-B).
#include <gtest/gtest.h>

#include <cmath>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/accum/centdisc_accumulator.hpp"
#include "gnumap/accum/chardisc_accumulator.hpp"
#include "gnumap/accum/codebook.hpp"
#include "gnumap/accum/norm_accumulator.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {
namespace {

TEST(AccumKind, FromString) {
  EXPECT_EQ(accum_kind_from_string("norm"), AccumKind::kNorm);
  EXPECT_EQ(accum_kind_from_string("chardisc"), AccumKind::kCharDisc);
  EXPECT_EQ(accum_kind_from_string("centdisc"), AccumKind::kCentDisc);
  EXPECT_THROW(accum_kind_from_string("bogus"), ConfigError);
}

TEST(AccumKind, Names) {
  EXPECT_STREQ(accum_kind_name(AccumKind::kNorm), "NORM");
  EXPECT_STREQ(accum_kind_name(AccumKind::kCharDisc), "CHARDISC");
  EXPECT_STREQ(accum_kind_name(AccumKind::kCentDisc), "CENTDISC");
}

// ---------------------------------------------------------------------------
// NORM

TEST(NormAccumulator, ExactAddition) {
  NormAccumulator accum(100, 50);
  accum.add(110, {1.0f, 0.5f, 0.0f, 0.0f, 0.25f});
  accum.add(110, {0.5f, 0.5f, 0.0f, 0.0f, 0.0f});
  const auto counts = accum.counts(110);
  EXPECT_FLOAT_EQ(counts[0], 1.5f);
  EXPECT_FLOAT_EQ(counts[1], 1.0f);
  EXPECT_FLOAT_EQ(counts[4], 0.25f);
}

TEST(NormAccumulator, OutOfRangeIgnored) {
  NormAccumulator accum(100, 50);
  accum.add(99, {1, 1, 1, 1, 1});
  accum.add(150, {1, 1, 1, 1, 1});
  for (std::uint64_t pos = 100; pos < 150; ++pos) {
    for (const float v : accum.counts(pos)) EXPECT_FLOAT_EQ(v, 0.0f);
  }
  // Reads outside the range return zeros too.
  for (const float v : accum.counts(99)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(NormAccumulator, SerializeRoundTrip) {
  NormAccumulator a(0, 20);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    a.add(rng.next_below(20),
          {static_cast<float>(rng.next_double()), 0.1f, 0.2f, 0.0f, 0.0f});
  }
  NormAccumulator b(0, 20);
  b.from_bytes(a.to_bytes());
  for (std::uint64_t pos = 0; pos < 20; ++pos) {
    EXPECT_EQ(a.counts(pos), b.counts(pos));
  }
}

TEST(NormAccumulator, MergeEqualsCombinedAdds) {
  NormAccumulator a(0, 10), b(0, 10), combined(0, 10);
  a.add(3, {1, 0, 0, 0, 0});
  b.add(3, {0, 2, 0, 0, 0});
  b.add(7, {0, 0, 1, 0, 0});
  combined.add(3, {1, 0, 0, 0, 0});
  combined.add(3, {0, 2, 0, 0, 0});
  combined.add(7, {0, 0, 1, 0, 0});
  a.merge(b);
  for (std::uint64_t pos = 0; pos < 10; ++pos) {
    EXPECT_EQ(a.counts(pos), combined.counts(pos));
  }
}

TEST(NormAccumulator, MergeRejectsMismatch) {
  NormAccumulator a(0, 10);
  NormAccumulator b(0, 11);
  EXPECT_THROW(a.merge(b), ConfigError);
  CharDiscAccumulator c(0, 10);
  EXPECT_THROW(a.merge(c), ConfigError);
}

TEST(NormAccumulator, BytesPerPosition) {
  NormAccumulator accum(0, 1000);
  EXPECT_DOUBLE_EQ(accum.bytes_per_position(), 20.0);
  EXPECT_EQ(accum.memory_bytes(), 1000u * 20u);
}

// ---------------------------------------------------------------------------
// CHARDISC

TEST(CharDisc, PaperWorkedExamples) {
  // "If T were 1 and there were only a single a, then phi = [255,0,0,0,0]."
  auto shares = CharDiscAccumulator::quantize({1, 0, 0, 0, 0}, 1.0f);
  EXPECT_EQ(shares[0], 255);
  // "one a and one t -> [128, 0, 0, 127, 0]"
  shares = CharDiscAccumulator::quantize({1, 0, 0, 1, 0}, 2.0f);
  EXPECT_EQ(int(shares[0]) + int(shares[3]), 255);
  EXPECT_NEAR(int(shares[0]), 128, 1);
  // "254 a's and a single t -> [254, 0, 0, 1, 0]"
  shares = CharDiscAccumulator::quantize({254, 0, 0, 1, 0}, 255.0f);
  EXPECT_EQ(shares[0], 254);
  EXPECT_EQ(shares[3], 1);
}

TEST(CharDisc, SharesSumTo255WhenNonEmpty) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    TrackVector v;
    float total = 0.0f;
    for (auto& x : v) {
      x = static_cast<float>(rng.next_double() * 10.0);
      total += x;
    }
    const auto shares = CharDiscAccumulator::quantize(v, total);
    int sum = 0;
    for (const auto s : shares) sum += s;
    EXPECT_EQ(sum, 255);
  }
}

TEST(CharDisc, RoundTripErrorBounded) {
  CharDiscAccumulator accum(0, 4);
  NormAccumulator exact(0, 4);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    TrackVector delta{};
    delta[rng.next_below(5)] = 0.5f + static_cast<float>(rng.next_double());
    accum.add(1, delta);
    exact.add(1, delta);
  }
  const auto approx = accum.counts(1);
  const auto truth = exact.counts(1);
  float total = 0.0f;
  for (const float v : truth) total += v;
  for (int k = 0; k < 5; ++k) {
    // Quantization error per track is bounded by a few /255 steps of the
    // total, compounded over adds.
    EXPECT_NEAR(approx[static_cast<std::size_t>(k)],
                truth[static_cast<std::size_t>(k)], 0.05f * total + 0.05f);
  }
}

TEST(CharDisc, SaturationBeyond255) {
  // Accumulate 300 units of A, then one unit of T: the T signal is nearly
  // invisible after saturation — the paper's documented limitation.
  CharDiscAccumulator accum(0, 1);
  for (int i = 0; i < 300; ++i) accum.add(0, {1, 0, 0, 0, 0});
  accum.add(0, {0, 0, 0, 1, 0});
  const auto counts = accum.counts(0);
  // The single T among 301 total is at most one 1/255 share.
  EXPECT_LE(counts[3], 301.0f / 255.0f + 1e-3f);
}

TEST(CharDisc, SerializeRoundTrip) {
  CharDiscAccumulator a(10, 16);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    TrackVector delta{};
    delta[rng.next_below(5)] = 1.0f;
    a.add(10 + rng.next_below(16), delta);
  }
  CharDiscAccumulator b(10, 16);
  b.from_bytes(a.to_bytes());
  for (std::uint64_t pos = 10; pos < 26; ++pos) {
    EXPECT_EQ(a.counts(pos), b.counts(pos));
  }
}

TEST(CharDisc, MergePreservesTotals) {
  CharDiscAccumulator a(0, 4), b(0, 4);
  a.add(2, {3, 0, 0, 0, 0});
  b.add(2, {0, 0, 2, 0, 0});
  a.merge(b);
  const auto counts = a.counts(2);
  float total = 0.0f;
  for (const float v : counts) total += v;
  EXPECT_NEAR(total, 5.0f, 1e-3f);
  EXPECT_NEAR(counts[0], 3.0f, 0.1f);
  EXPECT_NEAR(counts[2], 2.0f, 0.1f);
}

TEST(CharDisc, BytesPerPosition) {
  CharDiscAccumulator accum(0, 1000);
  EXPECT_DOUBLE_EQ(accum.bytes_per_position(), 9.0);
}

// ---------------------------------------------------------------------------
// Codebook / CENTDISC

TEST(Codebook, CentroidsAreDistributions) {
  const auto& book = CentroidCodebook::instance();
  for (int code = 1; code < CentroidCodebook::kSize; ++code) {
    float sum = 0.0f;
    for (const float v : book.centroid(static_cast<std::uint8_t>(code))) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f) << "code " << code;
  }
}

TEST(Codebook, EmptyCodeIsZero) {
  const auto& book = CentroidCodebook::instance();
  for (const float v : book.centroid(CentroidCodebook::kEmptyCode)) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Codebook, PureStatesQuantizeToThemselves) {
  const auto& book = CentroidCodebook::instance();
  // The paper's example: a single 'a' is [0.84, 0.04, 0.04, 0.04, 0.04].
  const auto code = book.quantize({1, 0, 0, 0, 0});
  const auto& centroid = book.centroid(code);
  EXPECT_GT(centroid[0], 0.8f);
}

TEST(Codebook, QuantizeIdempotent) {
  const auto& book = CentroidCodebook::instance();
  for (int code = 1; code < CentroidCodebook::kSize; ++code) {
    EXPECT_EQ(book.quantize(book.centroid(static_cast<std::uint8_t>(code))),
              code);
  }
}

TEST(Codebook, MergeWithEmptyIsIdentity) {
  const auto& book = CentroidCodebook::instance();
  for (int code = 0; code < CentroidCodebook::kSize; ++code) {
    EXPECT_EQ(book.merge(CentroidCodebook::kEmptyCode,
                         static_cast<std::uint8_t>(code)),
              code);
    EXPECT_EQ(book.merge(static_cast<std::uint8_t>(code),
                         CentroidCodebook::kEmptyCode),
              code);
  }
}

TEST(Codebook, TransitionStatesDenserThanTransversion) {
  // Count centroids whose two largest tracks are the A/G transition pair vs
  // the A/C transversion pair; the biological weighting makes the former
  // strictly more numerous.
  const auto& book = CentroidCodebook::instance();
  auto count_pair = [&](int a, int b) {
    int count = 0;
    for (int code = 1; code < CentroidCodebook::kSize; ++code) {
      const auto& c = book.centroid(static_cast<std::uint8_t>(code));
      int top = 0, second = 1;
      for (int k = 1; k < 5; ++k) {
        if (c[static_cast<std::size_t>(k)] >
            c[static_cast<std::size_t>(top)]) {
          second = top;
          top = k;
        } else if (k != top && c[static_cast<std::size_t>(k)] >
                                   c[static_cast<std::size_t>(second)]) {
          second = k;
        }
      }
      if ((top == a && second == b) || (top == b && second == a)) ++count;
    }
    return count;
  };
  EXPECT_GT(count_pair(0, 2), count_pair(0, 1));
}

TEST(CentDisc, SingleAddReadsBackApproximately) {
  CentDiscAccumulator accum(0, 2);
  accum.add(0, {2, 0, 0, 0, 0});
  const auto counts = accum.counts(0);
  float total = 0.0f;
  for (const float v : counts) total += v;
  EXPECT_NEAR(total, 2.0f, 1e-3f);
  EXPECT_GT(counts[0], 1.5f);  // smoothed pure-A centroid
}

TEST(CentDisc, RepeatedRequantizationDrifts) {
  // The documented pathology: after many adds, the readback can deviate
  // from the exact sum far more than CHARDISC does.
  CentDiscAccumulator cent(0, 1);
  CharDiscAccumulator chard(0, 1);
  NormAccumulator exact(0, 1);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    TrackVector delta{};
    delta[0] = 0.9f;
    delta[2] = 0.1f;  // A with a whiff of G
    cent.add(0, delta);
    chard.add(0, delta);
    exact.add(0, delta);
  }
  const auto truth = exact.counts(0);
  const auto c1 = cent.counts(0);
  const auto c2 = chard.counts(0);
  double err_cent = 0.0, err_char = 0.0;
  for (int k = 0; k < 5; ++k) {
    err_cent += std::fabs(c1[static_cast<std::size_t>(k)] -
                          truth[static_cast<std::size_t>(k)]);
    err_char += std::fabs(c2[static_cast<std::size_t>(k)] -
                          truth[static_cast<std::size_t>(k)]);
  }
  EXPECT_GT(err_cent, err_char);
}

TEST(CentDisc, ApproximateClassifierPure) {
  const auto& book = CentroidCodebook::instance();
  const auto code = CentDiscAccumulator::approximate_code(
      book, {10.0f, 0.2f, 0.1f, 0.0f, 0.0f});
  EXPECT_EQ(code, book.pure_code(0));
}

TEST(CentDisc, ApproximateClassifierSnpEventFlipsMajority) {
  // 20% secondary mass: the paper-style classifier labels this as a SNP in
  // progress toward the secondary base — whose anchor state has *more* mass
  // on the secondary base than on the current majority.
  const auto& book = CentroidCodebook::instance();
  const auto code = CentDiscAccumulator::approximate_code(
      book, {8.0f, 0.0f, 2.0f, 0.0f, 0.0f});
  EXPECT_EQ(code, book.snp_code(0, 2));
  const auto& state = book.centroid(code);
  EXPECT_GT(state[2], state[0]);  // the attractor
}

TEST(CentDisc, ApproximateClassifierHet) {
  const auto& book = CentroidCodebook::instance();
  const auto code = CentDiscAccumulator::approximate_code(
      book, {5.0f, 0.0f, 4.5f, 0.0f, 0.0f});
  EXPECT_EQ(code, book.het_code(0, 2));
}

TEST(CentDisc, ApproximateClassifierUniform) {
  const auto& book = CentroidCodebook::instance();
  const auto code = CentDiscAccumulator::approximate_code(
      book, {1.0f, 1.0f, 1.0f, 1.0f, 1.0f});
  EXPECT_EQ(code, book.uniform_code());
}

TEST(CentDisc, ApproximateClassifierEmpty) {
  const auto& book = CentroidCodebook::instance();
  EXPECT_EQ(CentDiscAccumulator::approximate_code(book, {}),
            CentroidCodebook::kEmptyCode);
}

TEST(CentDisc, NearestModeMoreAccurateThanApproximate) {
  // An A position with ~15% G error mass: approximate mode walks into the
  // SNP/het attractor; nearest mode stays close to the truth.
  CentDiscAccumulator approx(0, 1, CentDiscQuantize::kApproximate);
  CentDiscAccumulator nearest(0, 1, CentDiscQuantize::kNearest);
  NormAccumulator exact(0, 1);
  for (int i = 0; i < 40; ++i) {
    const TrackVector delta =
        (i % 7 == 0) ? TrackVector{0.1f, 0.0f, 0.9f, 0.0f, 0.0f}
                     : TrackVector{0.95f, 0.0f, 0.05f, 0.0f, 0.0f};
    approx.add(0, delta);
    nearest.add(0, delta);
    exact.add(0, delta);
  }
  const auto truth = exact.counts(0);
  double err_approx = 0.0, err_nearest = 0.0;
  for (int k = 0; k < 5; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    err_approx += std::fabs(approx.counts(0)[ks] - truth[ks]);
    err_nearest += std::fabs(nearest.counts(0)[ks] - truth[ks]);
  }
  EXPECT_LT(err_nearest, err_approx);
  // The approximate walk must not preserve the A majority faithfully;
  // nearest keeps A dominant as in the exact counts.
  EXPECT_GT(nearest.counts(0)[0], nearest.counts(0)[2]);
}

TEST(CentDisc, SerializeRoundTrip) {
  CentDiscAccumulator a(5, 8);
  Rng rng(15);
  for (int i = 0; i < 40; ++i) {
    TrackVector delta{};
    delta[rng.next_below(5)] = 1.0f;
    a.add(5 + rng.next_below(8), delta);
  }
  CentDiscAccumulator b(5, 8);
  b.from_bytes(a.to_bytes());
  for (std::uint64_t pos = 5; pos < 13; ++pos) {
    EXPECT_EQ(a.counts(pos), b.counts(pos));
    EXPECT_EQ(a.code_at(pos), b.code_at(pos));
  }
}

TEST(CentDisc, MergeUsesTableAndAddsTotals) {
  CentDiscAccumulator a(0, 1), b(0, 1);
  a.add(0, {4, 0, 0, 0, 0});
  b.add(0, {0, 0, 0, 4, 0});
  a.merge(b);
  const auto counts = a.counts(0);
  float total = 0.0f;
  for (const float v : counts) total += v;
  EXPECT_NEAR(total, 8.0f, 1e-3f);  // totals add exactly
  // Composition went through the equal-weight table: roughly half A, half T.
  EXPECT_GT(counts[0], 2.0f);
  EXPECT_GT(counts[3], 2.0f);
}

TEST(CentDisc, BytesPerPositionSmallest) {
  CentDiscAccumulator cent(0, 100);
  CharDiscAccumulator chard(0, 100);
  NormAccumulator norm(0, 100);
  EXPECT_LT(cent.bytes_per_position(), chard.bytes_per_position());
  EXPECT_LT(chard.bytes_per_position(), norm.bytes_per_position());
}

// ---------------------------------------------------------------------------
// Factory

TEST(Factory, MakesEveryKind) {
  for (const auto kind :
       {AccumKind::kNorm, AccumKind::kCharDisc, AccumKind::kCentDisc}) {
    const auto accum = make_accumulator(kind, 7, 11);
    EXPECT_EQ(accum->kind(), kind);
    EXPECT_EQ(accum->begin(), 7u);
    EXPECT_EQ(accum->size(), 11u);
  }
}

class AccumulatorContract : public ::testing::TestWithParam<AccumKind> {};

TEST_P(AccumulatorContract, AddReadbackTotalsConsistent) {
  const auto accum = make_accumulator(GetParam(), 0, 32);
  Rng rng(19);
  std::array<double, 32> expected_totals{};
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t pos = rng.next_below(32);
    TrackVector delta{};
    delta[rng.next_below(5)] = 1.0f;
    accum->add(pos, delta);
    expected_totals[pos] += 1.0;
  }
  for (std::uint64_t pos = 0; pos < 32; ++pos) {
    float total = 0.0f;
    for (const float v : accum->counts(pos)) {
      EXPECT_GE(v, 0.0f);
      total += v;
    }
    // Totals are preserved by all three layouts (only composition degrades).
    EXPECT_NEAR(total, expected_totals[pos], expected_totals[pos] * 0.01 + 0.01);
  }
}

TEST_P(AccumulatorContract, SerializedMergeMatchesLocalMerge) {
  const auto a1 = make_accumulator(GetParam(), 0, 16);
  const auto a2 = make_accumulator(GetParam(), 0, 16);
  const auto b = make_accumulator(GetParam(), 0, 16);
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    TrackVector delta{};
    delta[rng.next_below(5)] = 1.0f;
    const std::uint64_t pos = rng.next_below(16);
    if (i % 2 == 0) {
      a1->add(pos, delta);
      a2->add(pos, delta);
    } else {
      b->add(pos, delta);
    }
  }
  // Merge via serialization (the mpsim reduction path).
  const auto c = make_accumulator(GetParam(), 0, 16);
  c->from_bytes(b->to_bytes());
  a1->merge(*c);
  a2->merge(*b);
  for (std::uint64_t pos = 0; pos < 16; ++pos) {
    EXPECT_EQ(a1->counts(pos), a2->counts(pos));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AccumulatorContract,
                         ::testing::Values(AccumKind::kNorm,
                                           AccumKind::kCharDisc,
                                           AccumKind::kCentDisc));

}  // namespace
}  // namespace gnumap

// Unit tests for gnumap/util: RNG, strings, timers, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "gnumap/util/error.hpp"
#include "gnumap/util/rng.hpp"
#include "gnumap/util/string_util.hpp"
#include "gnumap/util/thread_pool.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(21);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PoissonMean) {
  Rng rng(23);
  for (const double lambda : {0.5, 4.0, 30.0, 100.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.next_poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.05) << "lambda=" << lambda;
  }
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(rng.next_poisson(0.0), 0u);
  EXPECT_EQ(rng.next_poisson(-1.0), 0u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto fields = split("a\t\tb\t", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(strip("  hi \t\r\n"), "hi");
  EXPECT_EQ(strip(""), "");
  EXPECT_EQ(strip(" \t "), "");
  EXPECT_EQ(strip("x"), "x");
}

TEST(StringUtil, ParseU64) {
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64(" 7 "), 7u);
  EXPECT_THROW(parse_u64("12x"), ParseError);
  EXPECT_THROW(parse_u64(""), ParseError);
  EXPECT_THROW(parse_u64("-3"), ParseError);
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_THROW(parse_double("abc"), ParseError);
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(5ull * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(StringUtil, FormatPercent) {
  EXPECT_EQ(format_percent(0.932), "93.2%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(StringUtil, FormatHms) {
  EXPECT_EQ(format_hms(0.0), "00:00:00");
  EXPECT_EQ(format_hms(3661.0), "01:01:01");
  EXPECT_EQ(format_hms(15955.0), "04:25:55");  // paper's NORM wall clock
}

TEST(Timer, MeasuresElapsed) {
  Timer timer;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(timer.seconds(), 0.0);
}

TEST(Stopwatch, Accumulates) {
  Stopwatch sw;
  sw.add_seconds(1.5);
  sw.add_seconds(0.5);
  EXPECT_DOUBLE_EQ(sw.total_seconds(), 2.0);
  sw.reset();
  EXPECT_DOUBLE_EQ(sw.total_seconds(), 0.0);
}

TEST(Stopwatch, RunningSecondsCoversTheOpenInterval) {
  Stopwatch sw;
  EXPECT_FALSE(sw.running());
  EXPECT_DOUBLE_EQ(sw.running_seconds(), 0.0);

  sw.start();
  EXPECT_TRUE(sw.running());
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  // total_seconds ignores the open interval (the documented footgun);
  // elapsed_including_running sees it.
  EXPECT_DOUBLE_EQ(sw.total_seconds(), 0.0);
  EXPECT_GE(sw.running_seconds(), 0.0);
  EXPECT_GE(sw.elapsed_including_running(), sw.running_seconds());

  sw.stop();
  EXPECT_FALSE(sw.running());
  EXPECT_DOUBLE_EQ(sw.running_seconds(), 0.0);
  // Once stopped the two accessors agree.
  EXPECT_DOUBLE_EQ(sw.elapsed_including_running(), sw.total_seconds());
  EXPECT_GT(sw.total_seconds(), 0.0);
}

TEST(Stopwatch, ElapsedIncludingRunningIsMonotoneWhileOpen) {
  Stopwatch sw;
  sw.add_seconds(1.0);
  sw.start();
  const double first = sw.elapsed_including_running();
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  const double second = sw.elapsed_including_running();
  EXPECT_GE(first, 1.0);
  EXPECT_GE(second, first);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(FreeParallelFor, SingleThreadWorks) {
  std::vector<int> hits(100, 0);
  parallel_for(1, 0, hits.size(), 10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(FreeParallelFor, ManyThreadsCoverOnce) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(8, 0, hits.size(), 13, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Error, RequireThrows) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), ConfigError);
}

}  // namespace
}  // namespace gnumap

// Integration tests for the GNUMAP-SNP core: read mapper, SNP caller, full
// plant-and-recover pipelines (monoploid and diploid), evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gnumap/core/evaluation.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/core/read_mapper.hpp"
#include "gnumap/core/snp_caller.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"

namespace gnumap {
namespace {

PipelineConfig test_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  config.min_coverage = 3.0;
  return config;
}

Genome test_reference(std::uint64_t length = 60000, std::uint64_t seed = 41) {
  ReferenceGenOptions options;
  options.length = length;
  options.repeat_fraction = 0.0;
  options.n_fraction = 0.0;
  options.seed = seed;
  return generate_reference(options);
}

// ---------------------------------------------------------------------------
// ReadMapper

TEST(ReadMapper, MapsSimulatedReadToOrigin) {
  const Genome g = test_reference(30000);
  const PipelineConfig config = test_config();
  const HashIndex index(g, config.index);
  const ReadMapper mapper(g, index, config);

  ReadSimOptions sim_options;
  sim_options.coverage = 0.5;
  sim_options.indel_rate = 0.0;
  const auto sims = simulate_reads(g, sim_options);
  ASSERT_GT(sims.size(), 50u);

  MapperWorkspace ws;
  MapStats stats;
  int correct = 0, mapped = 0;
  for (const auto& sim : sims) {
    const auto sites = mapper.score_read(sim.read, ws, stats);
    if (sites.empty()) continue;
    ++mapped;
    // Strongest site should cover the true origin.
    const ScoredSite* best = &sites.front();
    for (const auto& site : sites) {
      if (site.weight > best->weight) best = &site;
    }
    const GenomePos truth = g.global_pos(sim.contig, sim.origin);
    if (truth >= best->window_begin &&
        truth < best->window_begin + best->contributions.tracks.size()) {
      ++correct;
    }
  }
  EXPECT_GT(mapped, static_cast<int>(sims.size() * 9 / 10));
  EXPECT_GT(correct, mapped * 9 / 10);
}

TEST(ReadMapper, RandomReadDoesNotMap) {
  const Genome g = test_reference(30000);
  const PipelineConfig config = test_config();
  const HashIndex index(g, config.index);
  const ReadMapper mapper(g, index, config);

  Rng rng(1234);
  MapperWorkspace ws;
  MapStats stats;
  int mapped = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Read read;
    read.name = "random";
    for (int i = 0; i < 62; ++i) {
      read.bases.push_back(static_cast<std::uint8_t>(rng.next_below(4)));
    }
    read.quals.assign(62, 40);
    if (!mapper.score_read(read, ws, stats).empty()) ++mapped;
  }
  // Random 62-mers occasionally share a seed but must not pass the
  // log-likelihood cutoff.
  EXPECT_LE(mapped, 2);
}

TEST(ReadMapper, SiteWeightsSumToOne) {
  // A read from a duplicated region maps to both copies with split weight.
  std::string unit;
  Rng rng(77);
  for (int i = 0; i < 400; ++i) unit += "ACGT"[rng.next_below(4)];
  std::string seq;
  for (int i = 0; i < 3; ++i) seq += unit;  // three identical copies
  Genome g;
  g.add_contig("chr1", seq);

  PipelineConfig config = test_config();
  const HashIndex index(g, config.index);
  const ReadMapper mapper(g, index, config);

  Read read;
  read.name = "dup";
  read.bases = encode_sequence(unit.substr(100, 62));
  read.quals.assign(62, 40);
  MapperWorkspace ws;
  MapStats stats;
  const auto sites = mapper.score_read(read, ws, stats);
  ASSERT_GE(sites.size(), 3u);
  double total = 0.0;
  for (const auto& site : sites) total += site.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Three identical copies: each gets about a third.
  for (const auto& site : sites) {
    if (site.weight > 0.2) {
      EXPECT_NEAR(site.weight, 1.0 / 3.0, 0.05);
    }
  }
}

// ---------------------------------------------------------------------------
// Full pipeline, monoploid

TEST(Pipeline, RecoversPlantedSnps) {
  const Genome ref = test_reference(60000);
  CatalogGenOptions catalog_options;
  catalog_options.count = 30;
  const auto catalog = generate_catalog(ref, catalog_options);
  const Genome individual = apply_catalog(ref, catalog);

  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const auto result = run_pipeline(ref, reads, test_config());
  const auto eval = evaluate_calls(result.calls, catalog);

  EXPECT_GT(eval.recall(), 0.85) << "tp=" << eval.tp << " fn=" << eval.fn;
  EXPECT_GT(eval.precision(), 0.85) << "fp=" << eval.fp;
  EXPECT_GT(result.stats.reads_mapped, result.stats.reads_total * 8 / 10);
}

TEST(Pipeline, NoSnpsOnUnmutatedGenome) {
  const Genome ref = test_reference(40000);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(ref, sim_options));
  const auto result = run_pipeline(ref, reads, test_config());
  // Background errors should essentially never reach the LRT cutoff.
  EXPECT_LE(result.calls.size(), 2u);
}

TEST(Pipeline, ThreadedMatchesSerialCalls) {
  const Genome ref = test_reference(30000);
  CatalogGenOptions catalog_options;
  catalog_options.count = 15;
  const auto catalog = generate_catalog(ref, catalog_options);
  const Genome individual = apply_catalog(ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  PipelineConfig serial = test_config();
  PipelineConfig threaded = test_config();
  threaded.threads = 4;
  const auto serial_result = run_pipeline(ref, reads, serial);
  const auto threaded_result = run_pipeline(ref, reads, threaded);

  // NORM accumulation is commutative up to float rounding; the call sets
  // must agree.
  std::set<std::uint64_t> serial_positions, threaded_positions;
  for (const auto& call : serial_result.calls) {
    serial_positions.insert(call.position);
  }
  for (const auto& call : threaded_result.calls) {
    threaded_positions.insert(call.position);
  }
  EXPECT_EQ(serial_positions, threaded_positions);
}

TEST(Pipeline, ThreadedCharDiscRecoversDespiteOrderSensitivity) {
  // CHARDISC adds do not commute exactly (each add requantizes), so a
  // threaded run is not bit-identical to serial — but the calls must still
  // be accurate.  This guards the accumulate-under-lock path for the
  // discretized layouts.
  const Genome ref = test_reference(30000);
  CatalogGenOptions catalog_options;
  catalog_options.count = 15;
  const auto catalog = generate_catalog(ref, catalog_options);
  const Genome individual = apply_catalog(ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  PipelineConfig config = test_config();
  config.accum_kind = AccumKind::kCharDisc;
  config.threads = 4;
  const auto result = run_pipeline(ref, reads, config);
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_GT(eval.recall(), 0.8);
  EXPECT_GT(eval.precision(), 0.85);
}

TEST(Pipeline, FdrModeCallsSnps) {
  const Genome ref = test_reference(40000);
  CatalogGenOptions catalog_options;
  catalog_options.count = 20;
  const auto catalog = generate_catalog(ref, catalog_options);
  const Genome individual = apply_catalog(ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  PipelineConfig config = test_config();
  config.use_fdr = true;
  config.fdr_q = 0.05;
  const auto result = run_pipeline(ref, reads, config);
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_GT(eval.recall(), 0.8);
  EXPECT_GT(eval.precision(), 0.8);
}

TEST(Pipeline, RepeatRegionsStillCalled) {
  // The paper highlights sensitivity in repeat regions: a SNP inside a
  // 2-copy repeat should still be recoverable because reads split their
  // weight across both copies and the true copy accumulates more evidence.
  ReferenceGenOptions ref_options;
  ref_options.length = 50000;
  ref_options.repeat_fraction = 0.15;
  ref_options.repeat_block = 1500;
  ref_options.repeat_divergence = 0.03;
  ref_options.n_fraction = 0.0;
  const Genome ref = generate_reference(ref_options);

  CatalogGenOptions catalog_options;
  catalog_options.count = 25;
  const auto catalog = generate_catalog(ref, catalog_options);
  const Genome individual = apply_catalog(ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 14.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const auto result = run_pipeline(ref, reads, test_config());
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_GT(eval.recall(), 0.7);
  EXPECT_GT(eval.precision(), 0.7);
}

// ---------------------------------------------------------------------------
// Diploid

TEST(Pipeline, DiploidRecoversHetSites) {
  const Genome ref = test_reference(60000);
  CatalogGenOptions catalog_options;
  catalog_options.count = 30;
  catalog_options.het_fraction = 0.5;
  const auto catalog = generate_catalog(ref, catalog_options);
  const auto individual = apply_catalog_diploid(ref, catalog);

  ReadSimOptions sim_options;
  sim_options.coverage = 20.0;  // het sites need depth on both alleles
  const auto reads = strip_metadata(
      simulate_reads_diploid(individual.hap1, individual.hap2, sim_options));

  PipelineConfig config = test_config();
  config.ploidy = Ploidy::kDiploid;
  const auto result = run_pipeline(ref, reads, config);
  const auto eval = evaluate_calls(result.calls, catalog);
  EXPECT_GT(eval.recall(), 0.75) << "tp=" << eval.tp << " fn=" << eval.fn;
  EXPECT_GT(eval.precision(), 0.8) << "fp=" << eval.fp;

  // Het truth sites that were called should be genotyped heterozygous
  // (ref allele + alt allele) most of the time.
  int het_called = 0, het_correct = 0;
  for (const auto& call : result.calls) {
    for (const auto& entry : catalog) {
      if (entry.position == call.position &&
          entry.zygosity == Zygosity::kHet) {
        ++het_called;
        const bool has_alt =
            call.allele1 == entry.alt || call.allele2 == entry.alt;
        const bool has_ref =
            call.allele1 == entry.ref || call.allele2 == entry.ref;
        if (has_alt && has_ref) ++het_correct;
      }
    }
  }
  if (het_called > 0) {
    EXPECT_GT(static_cast<double>(het_correct) / het_called, 0.7);
  }
}

// ---------------------------------------------------------------------------
// SNP caller unit behaviour

TEST(SnpCaller, RequiresMinimumCoverage) {
  Genome g;
  g.add_contig("chr1", "ACGTACGTACGT");
  auto accum = make_accumulator(AccumKind::kNorm, 0, g.padded_size());
  // Strong non-reference signal but below min_coverage.
  accum->add(5, {2.0f, 0, 0, 0, 0});  // position 5 is C in the reference

  PipelineConfig config = test_config();
  config.min_coverage = 3.0;
  EXPECT_TRUE(call_snps(g, *accum, config).empty());

  accum->add(5, {2.0f, 0, 0, 0, 0});
  accum->add(5, {2.0f, 0, 0, 0, 0});
  const auto calls = call_snps(g, *accum, config);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].position, 5u);
  EXPECT_EQ(calls[0].allele1, encode_base('A'));
}

TEST(SnpCaller, IgnoresMatchingReference) {
  Genome g;
  g.add_contig("chr1", "ACGTACGTACGT");
  auto accum = make_accumulator(AccumKind::kNorm, 0, g.padded_size());
  for (int i = 0; i < 20; ++i) accum->add(0, {1.0f, 0, 0, 0, 0});  // ref A
  EXPECT_TRUE(call_snps(g, *accum, test_config()).empty());
}

TEST(SnpCaller, AlphaControlsCalls) {
  Genome g;
  g.add_contig("chr1", "ACGTACGTACGT");
  auto accum = make_accumulator(AccumKind::kNorm, 0, g.padded_size());
  // Borderline signal: 5 reads of G at an A position.
  for (int i = 0; i < 5; ++i) accum->add(0, {0, 0, 1.0f, 0, 0});

  PipelineConfig loose = test_config();
  loose.alpha = 0.05;
  PipelineConfig strict = test_config();
  strict.alpha = 1e-12;
  EXPECT_EQ(call_snps(g, *accum, loose).size(), 1u);
  EXPECT_TRUE(call_snps(g, *accum, strict).empty());
}

TEST(SnpCaller, RangeRestriction) {
  Genome g;
  g.add_contig("chr1", "AAAAAAAAAAAA");
  auto accum = make_accumulator(AccumKind::kNorm, 0, g.padded_size());
  for (int i = 0; i < 10; ++i) {
    accum->add(2, {0, 0, 1.0f, 0, 0});
    accum->add(8, {0, 0, 1.0f, 0, 0});
  }
  const PipelineConfig config = test_config();
  EXPECT_EQ(call_snps(g, *accum, config).size(), 2u);
  const auto first_half = call_snps(g, *accum, config, 0, 5);
  ASSERT_EQ(first_half.size(), 1u);
  EXPECT_EQ(first_half[0].position, 2u);
}

// ---------------------------------------------------------------------------
// Evaluation

TEST(Evaluation, CountsCorrectly) {
  SnpCatalog truth;
  truth.push_back({"chr1", 10, 0, 2, Zygosity::kHom});
  truth.push_back({"chr1", 20, 1, 3, Zygosity::kHom});

  std::vector<SnpCall> calls(2);
  calls[0].contig = "chr1";
  calls[0].position = 10;
  calls[0].allele1 = calls[0].allele2 = 2;  // correct
  calls[1].contig = "chr1";
  calls[1].position = 99;
  calls[1].allele1 = calls[1].allele2 = 1;  // FP

  const auto eval = evaluate_calls(calls, truth);
  EXPECT_EQ(eval.tp, 1u);
  EXPECT_EQ(eval.fp, 1u);
  EXPECT_EQ(eval.fn, 1u);
  EXPECT_DOUBLE_EQ(eval.precision(), 0.5);
  EXPECT_DOUBLE_EQ(eval.recall(), 0.5);
}

TEST(Evaluation, AlleleMismatchIsFalsePositive) {
  SnpCatalog truth;
  truth.push_back({"chr1", 10, 0, 2, Zygosity::kHom});
  std::vector<SnpCall> calls(1);
  calls[0].contig = "chr1";
  calls[0].position = 10;
  calls[0].allele1 = calls[0].allele2 = 3;  // wrong alt
  auto eval = evaluate_calls(calls, truth, /*require_allele_match=*/true);
  EXPECT_EQ(eval.tp, 0u);
  EXPECT_EQ(eval.fp, 1u);
  eval = evaluate_calls(calls, truth, /*require_allele_match=*/false);
  EXPECT_EQ(eval.tp, 1u);
}

TEST(Evaluation, DuplicateCallsCountOnce) {
  SnpCatalog truth;
  truth.push_back({"chr1", 10, 0, 2, Zygosity::kHom});
  std::vector<SnpCall> calls(2);
  for (auto& call : calls) {
    call.contig = "chr1";
    call.position = 10;
    call.allele1 = call.allele2 = 2;
  }
  const auto eval = evaluate_calls(calls, truth);
  EXPECT_EQ(eval.tp, 1u);
  EXPECT_EQ(eval.fn, 0u);
}

}  // namespace
}  // namespace gnumap

// Tests for the worker-side output path: OutputChunk/ChunkSplicer (the
// order-splicing drain), apply_accum_deltas bit-identity, and the
// locale-independent to_chars render helpers that keep worker-rendered
// bytes identical to the historical ostream formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>
#include <locale>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnumap/accum/accumulator.hpp"
#include "gnumap/io/output_chunk.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/util/render.hpp"

namespace gnumap {
namespace {

using io::AccumDelta;
using io::ChunkSplicer;
using io::OutputChunk;

OutputChunk sam_chunk(const std::string& sam) {
  OutputChunk chunk;
  chunk.sam = sam;
  return chunk;
}

// ---------------------------------------------------------------------------
// ChunkSplicer: order restoration, counters, and the two admission limits.

TEST(ChunkSplicer, SplicesOutOfOrderChunksInOrder) {
  ChunkSplicer<> splicer(8, /*max_buffered_bytes=*/0);
  // Push 0..7 in reverse from a helper thread; all inside the window.
  std::thread producer([&] {
    for (int seq = 7; seq >= 0; --seq) {
      EXPECT_TRUE(splicer.push(static_cast<std::uint64_t>(seq),
                               sam_chunk("batch" + std::to_string(seq))));
    }
    splicer.close();
  });
  std::string stitched;
  std::uint64_t bytes = 0;
  while (auto chunk = splicer.pop_next()) {
    stitched += chunk->sam;
    bytes += chunk->bytes();
  }
  producer.join();
  EXPECT_EQ(stitched,
            "batch0batch1batch2batch3batch4batch5batch6batch7");
  EXPECT_EQ(splicer.chunks_spliced(), 8u);
  EXPECT_EQ(splicer.spliced_bytes(), bytes);
}

TEST(ChunkSplicer, EmptyChunksFlowThroughInOrder) {
  // Batches whose reads all failed to map render zero bytes; the splicer
  // must still release them in sequence so later batches are not stuck.
  ChunkSplicer<> splicer(4, 0);
  std::thread producer([&] {
    EXPECT_TRUE(splicer.push(1, OutputChunk{}));
    EXPECT_TRUE(splicer.push(0, sam_chunk("a")));
    EXPECT_TRUE(splicer.push(2, sam_chunk("c")));
    splicer.close();
  });
  std::vector<std::string> order;
  while (auto chunk = splicer.pop_next()) order.push_back(chunk->sam);
  producer.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_TRUE(order[1].empty());
  EXPECT_EQ(order[2], "c");
  EXPECT_EQ(splicer.chunks_spliced(), 3u);
}

TEST(ChunkSplicer, WindowSlidesFarPastCapacity) {
  // Many full window turns with competing producers: order and the parked
  // bound must hold across every wrap.
  ChunkSplicer<> splicer(3, 0);
  constexpr std::uint64_t kChunks = 900;
  std::atomic<std::uint64_t> next_claim{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::uint64_t seq = next_claim.fetch_add(1);
        if (seq >= kChunks) return;
        EXPECT_TRUE(splicer.push(seq, sam_chunk(std::to_string(seq) + "\n")));
      }
    });
  }
  for (std::uint64_t seq = 0; seq < kChunks; ++seq) {
    const auto chunk = splicer.pop_next();
    ASSERT_TRUE(chunk.has_value());
    EXPECT_EQ(chunk->sam, std::to_string(seq) + "\n");
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(splicer.peak_pending(), 3u);
  EXPECT_EQ(splicer.chunks_spliced(), kChunks);
}

TEST(ChunkSplicer, CloseUnblocksBlockedPushAndKeepsPrefix) {
  ChunkSplicer<> splicer(2, 0);
  EXPECT_TRUE(splicer.push(0, sam_chunk("keep")));
  std::thread blocked([&] {
    // Beyond the [0, 2) window: parks until close(), then reports false.
    EXPECT_FALSE(splicer.push(5, sam_chunk("drop")));
  });
  splicer.close();
  blocked.join();
  // The in-order prefix parked before close() still drains.
  const auto chunk = splicer.pop_next();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->sam, "keep");
  EXPECT_FALSE(splicer.pop_next().has_value());
}

TEST(ChunkSplicer, ByteBudgetBlocksOutOfOrderAndExemptsInOrder) {
  // Budget far below one chunk: out-of-order pushes must wait for the
  // drain, while the in-order chunk is always admitted (the exemption that
  // makes the budget deadlock-free).
  ChunkSplicer<> splicer(8, /*max_buffered_bytes=*/8);
  const std::string big(100, 'x');

  std::atomic<bool> parked{false};
  std::thread over_budget([&] {
    EXPECT_TRUE(splicer.push(1, sam_chunk(big)));  // 100 bytes > budget
    parked = true;
  });
  // The out-of-order push cannot land while the budget is exceeded.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(parked.load());

  // seq 0 is the in-order chunk: admitted immediately despite its size.
  EXPECT_TRUE(splicer.push(0, sam_chunk(big)));
  const auto first = splicer.pop_next();  // next_seq -> 1: seq 1 now in-order
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->sam, big);

  const auto second = splicer.pop_next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->sam, big);
  over_budget.join();
  EXPECT_TRUE(parked.load());
  splicer.close();
  EXPECT_EQ(splicer.spliced_bytes(), 200u);
}

TEST(OutputChunk, BytesCountsEverySegment) {
  OutputChunk chunk;
  EXPECT_TRUE(chunk.empty());
  chunk.sam = "12345";
  chunk.tsv = "123";
  chunk.accum.resize(2);
  EXPECT_EQ(chunk.bytes(), 5u + 3u + 2u * sizeof(AccumDelta));
  EXPECT_FALSE(chunk.empty());
  chunk.clear();
  EXPECT_TRUE(chunk.empty());
  EXPECT_EQ(chunk.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// apply_accum_deltas: replaying worker-flattened deltas must reproduce the
// direct add sequence bit-for-bit, for every accumulator layout.

TEST(OutputChunk, ApplyAccumDeltasMatchesDirectAddsBitForBit) {
  const std::vector<AccumDelta> deltas = {
      {10, {0.5f, 0.0f, 0.125f, 0.0f, 0.0f}},
      {11, {0.0f, 0.33333334f, 0.0f, 0.0f, 0.1f}},
      {10, {0.25f, 0.0f, 0.0f, 0.0f, 0.0f}},  // same pos twice: adds ordered
      {63, {0.0f, 0.0f, 0.0f, 0.7f, 0.0f}},
  };
  for (const AccumKind kind :
       {AccumKind::kNorm, AccumKind::kCharDisc, AccumKind::kCentDisc}) {
    auto direct = make_accumulator(kind, 0, 64);
    for (const auto& delta : deltas) direct->add(delta.pos, delta.counts);

    auto replayed = make_accumulator(kind, 0, 64);
    io::apply_accum_deltas(*replayed, deltas);

    EXPECT_EQ(direct->to_bytes(), replayed->to_bytes())
        << "layout " << accum_kind_name(kind);
  }
}

TEST(OutputChunk, ApplyAccumDeltasClipsOutOfRangePositions) {
  // Genome-partition ranks flatten whole-window deltas; positions outside
  // the rank's segment must be ignored, exactly as direct adds are.
  auto accum = make_accumulator(AccumKind::kNorm, 32, 16);  // [32, 48)
  const std::vector<AccumDelta> deltas = {
      {10, {1.0f, 0.0f, 0.0f, 0.0f, 0.0f}},   // below the segment
      {40, {0.0f, 2.0f, 0.0f, 0.0f, 0.0f}},   // inside
      {100, {0.0f, 0.0f, 3.0f, 0.0f, 0.0f}},  // above
  };
  io::apply_accum_deltas(*accum, deltas);
  EXPECT_EQ(accum->counts(40)[1], 2.0f);
  EXPECT_EQ(accum->counts(32)[0], 0.0f);
}

// ---------------------------------------------------------------------------
// Render helpers: byte-for-byte printf equivalence in the C locale...

std::string printf_double(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, value);
  return buf;
}

TEST(Render, FixedMatchesPrintf) {
  const double values[] = {0.0,     -0.0,   1.0,       2.5,    0.125,
                           3.14159, -17.25, 12345.678, 1e-12,  0.005,
                           99.995,  1e6,    -1e6,      0.0001, 7.62939453125e-6};
  for (const double v : values) {
    for (const int precision : {1, 2, 3, 4}) {
      std::string rendered;
      append_fixed(rendered, v, precision);
      const std::string fmt = "%." + std::to_string(precision) + "f";
      EXPECT_EQ(rendered, printf_double(fmt.c_str(), v)) << v;
    }
  }
}

TEST(Render, ScientificAndGeneralMatchPrintf) {
  const double values[] = {0.0,    1.0,   2.5e-8, 3.25e17, -4.5e-300,
                           6.7e30, 0.125, 1e-4,   9.999999e-3};
  for (const double v : values) {
    std::string sci;
    append_scientific(sci, v, 3);
    EXPECT_EQ(sci, printf_double("%.3e", v)) << v;
    std::string gen;
    append_general(gen, v, 6);
    EXPECT_EQ(gen, printf_double("%.6g", v)) << v;
  }
}

TEST(Render, IntCoversFullRange) {
  std::string out;
  append_int(out, std::numeric_limits<std::int64_t>::min());
  out += ' ';
  append_int(out, std::numeric_limits<std::uint64_t>::max());
  out += ' ';
  append_int(out, 0);
  EXPECT_EQ(out, "-9223372036854775808 18446744073709551615 0");
}

// ---------------------------------------------------------------------------
// ...and independence from the global locale.  A comma-decimal numpunct is
// installed globally (hermetic: no de_DE locale data needed) and must not
// leak a single byte into rendered output — the regression that motivated
// replacing ostream `<<` formatting in the output path.

class CommaNumpunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Swaps in a comma-decimal global locale for one test body.
class GlobalLocaleGuard {
 public:
  GlobalLocaleGuard()
      : saved_(std::locale::global(
            std::locale(std::locale::classic(), new CommaNumpunct))) {}
  ~GlobalLocaleGuard() { std::locale::global(saved_); }

 private:
  std::locale saved_;
};

TEST(Render, CommaDecimalLocaleDoesNotChangeRenderedBytes) {
  SnpCall call;
  call.contig = "chr1";
  call.position = 123456;
  call.ref = 0;      // A
  call.allele1 = 2;  // G
  call.allele2 = 2;
  call.coverage = 1234.5;
  call.lrt_stat = 56.78125;
  call.p_value = 1.25e-7;

  std::string before_row;
  append_snps_tsv_row(before_row, call);
  std::string before_fixed;
  append_fixed(before_fixed, 2.5, 2);

  {
    GlobalLocaleGuard comma_locale;
    // Sanity: the facet is live — locale-aware ostream formatting differs.
    std::ostringstream locale_sensitive;
    locale_sensitive.imbue(std::locale());
    locale_sensitive << 2.5;
    EXPECT_EQ(locale_sensitive.str(), "2,5");

    std::string after_row;
    append_snps_tsv_row(after_row, call);
    EXPECT_EQ(after_row, before_row);
    EXPECT_NE(after_row.find("1234.50"), std::string::npos) << after_row;

    std::string after_fixed;
    append_fixed(after_fixed, 2.5, 2);
    EXPECT_EQ(after_fixed, before_fixed);
    EXPECT_EQ(after_fixed, "2.50");
  }
}

}  // namespace
}  // namespace gnumap

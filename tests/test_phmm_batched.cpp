// Batched SIMD Pair-HMM engine vs the scalar oracle.
//
// The contract under test (see docs/KERNELS.md and batched.hpp): at every
// dispatch level the batched engine reproduces PairHmm::align *bit for bit* —
// same matrices, same log-likelihood, same ok/fail verdict — because every
// lane performs the scalar kernel's operations in the scalar kernel's order.
// The suite therefore asserts exact double equality for the scalar level and
// (belt and braces, in case a future backend ever relaxes the contract)
// 1e-9-relative agreement of posteriors at every level, in both boundary
// modes, plus degenerate shapes, workspace reuse, and dispatch resolution.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "gnumap/core/read_mapper.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/phmm/batched.hpp"
#include "gnumap/phmm/forward_backward.hpp"
#include "gnumap/phmm/marginal.hpp"
#include "gnumap/phmm/params.hpp"
#include "gnumap/phmm/pwm.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {
namespace {

using phmm::BatchedForward;
using phmm::SimdLevel;

Read make_read(const std::string& seq, std::uint8_t qual = 35) {
  Read read;
  read.name = "r";
  read.bases = encode_sequence(seq);
  read.quals.assign(read.bases.size(), qual);
  return read;
}

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back("ACGT"[rng.next_below(4)]);
  }
  return s;
}

/// One randomized alignment problem: a window and a read sampled from it
/// with mismatches, so most (not all) tasks have plausible alignments.
struct Problem {
  std::vector<std::uint8_t> window;
  Pwm pwm;
};

Problem make_problem(Rng& rng, std::size_t read_len, std::size_t window_len) {
  Problem p;
  const std::string win_seq = random_seq(rng, window_len);
  p.window = encode_sequence(win_seq);
  std::string read_seq;
  if (read_len <= window_len) {
    const std::size_t offset = rng.next_below(window_len - read_len + 1);
    read_seq = win_seq.substr(offset, read_len);
  } else {
    read_seq = random_seq(rng, read_len);  // read overhangs the window
  }
  for (char& ch : read_seq) {
    if (rng.bernoulli(0.08)) ch = "ACGT"[rng.next_below(4)];
  }
  p.pwm = Pwm::from_read(make_read(read_seq));
  return p;
}

std::vector<Problem> random_problems(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<Problem> problems;
  problems.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // A spread of shapes so packs mix full and partial lane occupancy.
    const std::size_t read_len = 8 + rng.next_below(40);
    const std::size_t window_len = read_len + rng.next_below(24);
    problems.push_back(make_problem(rng, read_len, window_len));
  }
  return problems;
}

void expect_matrices_bitwise_equal(const AlignmentMatrices& a,
                                   const AlignmentMatrices& b) {
  ASSERT_EQ(a.n, b.n);
  ASSERT_EQ(a.m, b.m);
  const std::size_t cells = (a.n + 1) * (a.m + 1);
  const std::pair<const std::vector<double>*, const std::vector<double>*>
      mats[] = {{&a.fm, &b.fm},   {&a.fgx, &b.fgx}, {&a.fgy, &b.fgy},
                {&a.bm, &b.bm},   {&a.bgx, &b.bgx}, {&a.bgy, &b.bgy}};
  for (const auto& [ma, mb] : mats) {
    for (std::size_t c = 0; c < cells; ++c) {
      ASSERT_EQ((*ma)[c], (*mb)[c]) << "cell " << c;
    }
  }
}

/// Runs `problems` through both engines at `level` and checks agreement.
/// `bitwise` additionally demands exact equality (the kernels are built to
/// deliver it at every level; posteriors get a tolerance fallback so a
/// hypothetical future backend with a documented tolerance still has a
/// meaningful test to loosen).
void check_equivalence(const std::vector<Problem>& problems, BoundaryMode mode,
                       SimdLevel level, bool bitwise) {
  const PhmmParams params;
  const PairHmm oracle(params, mode);
  BatchedForward batch(params, mode, level);
  for (std::size_t t = 0; t < problems.size(); ++t) {
    batch.add(problems[t].pwm, problems[t].window, t);
  }
  batch.run();
  ASSERT_EQ(batch.size(), problems.size());

  AlignmentMatrices expected;
  std::size_t ok_count = 0;
  for (std::size_t t = 0; t < problems.size(); ++t) {
    const bool expect_ok =
        oracle.align(problems[t].pwm, problems[t].window, expected);
    const auto& outcome = batch.outcome(t);
    ASSERT_EQ(outcome.ok, expect_ok) << "task " << t;
    ASSERT_EQ(outcome.tag, t);
    if (!expect_ok) continue;
    ++ok_count;

    const AlignmentMatrices& actual = batch.matrices(t);
    if (bitwise) {
      ASSERT_EQ(outcome.log_likelihood, expected.log_likelihood)
          << "task " << t;
      expect_matrices_bitwise_equal(expected, actual);
    } else {
      ASSERT_NEAR(outcome.log_likelihood, expected.log_likelihood,
                  1e-9 * std::abs(expected.log_likelihood));
    }

    // Posteriors within 1e-9 relative at every level (the issue's stated
    // tolerance; bitwise mode makes it trivially true today).
    const auto exp_mass = oracle.row_masses(expected);
    const auto act_mass = oracle.row_masses(actual);
    ASSERT_EQ(exp_mass.size(), act_mass.size());
    for (std::size_t i = 1; i < exp_mass.size(); ++i) {
      ASSERT_NEAR(act_mass[i], exp_mass[i], 1e-9 * std::abs(exp_mass[i]))
          << "task " << t << " row " << i;
    }
  }
  // The generator is tuned so the suite exercises real alignments, not a
  // pile of trivially failed ones.
  ASSERT_GT(ok_count, problems.size() / 2);
}

std::vector<SimdLevel> levels_to_test() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (phmm::max_supported_simd_level() >= SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (phmm::max_supported_simd_level() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

TEST(PhmmBatched, MatchesScalarOracleAllLevelsSemiGlobal) {
  const auto problems = random_problems(0xB10C5EED, 64);
  for (const SimdLevel level : levels_to_test()) {
    SCOPED_TRACE(phmm::simd_level_name(level));
    check_equivalence(problems, BoundaryMode::kSemiGlobal, level,
                      /*bitwise=*/true);
  }
}

TEST(PhmmBatched, MatchesScalarOracleAllLevelsGlobal) {
  const auto problems = random_problems(0x610BA1F00D, 64);
  for (const SimdLevel level : levels_to_test()) {
    SCOPED_TRACE(phmm::simd_level_name(level));
    check_equivalence(problems, BoundaryMode::kGlobal, level,
                      /*bitwise=*/true);
  }
}

TEST(PhmmBatched, IdenticalShapesFillFullPacks) {
  // All tasks share one (n, m) shape, so the AVX2 path runs 4 live lanes.
  Rng rng(77);
  std::vector<Problem> problems;
  for (int i = 0; i < 13; ++i) problems.push_back(make_problem(rng, 24, 40));
  for (const SimdLevel level : levels_to_test()) {
    SCOPED_TRACE(phmm::simd_level_name(level));
    check_equivalence(problems, BoundaryMode::kSemiGlobal, level,
                      /*bitwise=*/true);
  }
}

TEST(PhmmBatched, LengthBinnedMaskedPacksMatchOracleBitwise) {
  // Shapes within the default bin slack of each other but (mostly) not
  // identical, so nearly every pack is a masked mixed-shape pack.  The
  // masking arithmetic is exact, so results must still be bit-identical to
  // the scalar oracle at every level in both boundary modes.
  Rng rng(0xB17B17);
  std::vector<Problem> problems;
  for (int i = 0; i < 24; ++i) {
    const std::size_t read_len = 30 + rng.next_below(8);
    const std::size_t window_len = read_len + 10 + rng.next_below(6);
    problems.push_back(make_problem(rng, read_len, window_len));
  }
  for (const BoundaryMode mode :
       {BoundaryMode::kSemiGlobal, BoundaryMode::kGlobal}) {
    for (const SimdLevel level : levels_to_test()) {
      SCOPED_TRACE(std::string(phmm::simd_level_name(level)) +
                   (mode == BoundaryMode::kGlobal ? "/global" : "/semi"));
      check_equivalence(problems, mode, level, /*bitwise=*/true);
    }
  }
}

TEST(PhmmBatched, BinSlackControlsPacking) {
  // Mixed read lengths: binning merges nearby shapes into shared packs, so
  // fewer padding lanes are swept; slack 0 restores identical-shapes-only
  // packing.  Both settings are bit-identical to the oracle (asserted
  // above), so the observable difference is the occupancy accounting.
  Rng rng(4242);
  std::vector<Problem> problems;
  for (int i = 0; i < 32; ++i) {
    const std::size_t read_len = 36 + rng.next_below(12);
    problems.push_back(make_problem(rng, read_len, read_len + 20));
  }
  const PhmmParams params;
  const SimdLevel level = phmm::max_supported_simd_level();
  auto run_with_slack = [&](std::size_t slack) {
    BatchedForward batch(
        params, BoundaryMode::kSemiGlobal,
        phmm::EngineOptions{.simd = level, .bin_slack = slack});
    EXPECT_EQ(batch.bin_slack(), slack);
    for (const auto& p : problems) batch.add(p.pwm, p.window);
    batch.run();
    return batch.timings();
  };
  const auto binned = run_with_slack(phmm::kDefaultBinSlack);
  const auto unbinned = run_with_slack(0);
  // Useful cells are a property of the tasks, not the packing.
  EXPECT_EQ(binned.cells, unbinned.cells);
  EXPECT_GE(binned.swept_cells, binned.cells);
  EXPECT_GE(unbinned.swept_cells, unbinned.cells);
  if (level != SimdLevel::kScalar) {
    EXPECT_LT(binned.swept_cells, unbinned.swept_cells);
  }
}

TEST(PhmmBatched, PrecisionResolution) {
  using phmm::Precision;
  // Explicit requests pass through untouched.
  EXPECT_EQ(phmm::resolve_precision(Precision::kDouble), Precision::kDouble);
  EXPECT_EQ(phmm::resolve_precision(Precision::kSingle), Precision::kSingle);
  // GNUMAP_PHMM_FP32 drives kAuto: truthy values opt in, everything else
  // (including unset and typos) keeps the exact default path.
  ::unsetenv("GNUMAP_PHMM_FP32");
  EXPECT_EQ(phmm::resolve_precision(), Precision::kDouble);
  ::setenv("GNUMAP_PHMM_FP32", "1", 1);
  EXPECT_EQ(phmm::resolve_precision(), Precision::kSingle);
  ::setenv("GNUMAP_PHMM_FP32", "TRUE", 1);
  EXPECT_EQ(phmm::resolve_precision(), Precision::kSingle);
  ::setenv("GNUMAP_PHMM_FP32", "0", 1);
  EXPECT_EQ(phmm::resolve_precision(), Precision::kDouble);
  ::setenv("GNUMAP_PHMM_FP32", "bogus", 1);
  EXPECT_EQ(phmm::resolve_precision(), Precision::kDouble);
  ::setenv("GNUMAP_PHMM_FP32", "1", 1);
  EXPECT_EQ(phmm::resolve_precision(Precision::kDouble), Precision::kDouble);
  ::unsetenv("GNUMAP_PHMM_FP32");
}

TEST(PhmmBatched, DegenerateShapes) {
  const PhmmParams params;
  const Pwm empty_pwm;
  const Pwm real_pwm = Pwm::from_read(make_read("ACGTACGT"));
  const std::vector<std::uint8_t> empty_window;
  const std::vector<std::uint8_t> window = encode_sequence("ACGTACGTACGT");
  const std::vector<std::uint8_t> tiny_window = encode_sequence("AC");

  BatchedForward batch(params, BoundaryMode::kSemiGlobal, SimdLevel::kAuto);
  const auto empty_win_task = batch.add(real_pwm, empty_window, 1);
  const auto empty_pwm_task = batch.add(empty_pwm, window, 2);
  const auto overhang_task = batch.add(real_pwm, tiny_window, 3);
  const auto normal_task = batch.add(real_pwm, window, 4);
  batch.run();

  // Degenerate tasks fail exactly like a scalar align on the same inputs...
  for (const auto task : {empty_win_task, empty_pwm_task}) {
    EXPECT_FALSE(batch.outcome(task).ok);
    EXPECT_TRUE(std::isinf(batch.outcome(task).log_likelihood));
  }
  // ...and do not disturb their batch-mates.  A read longer than its window
  // is not degenerate — the scalar kernel decides whether it aligns.
  const PairHmm oracle(params, BoundaryMode::kSemiGlobal);
  AlignmentMatrices expected;
  EXPECT_EQ(batch.outcome(overhang_task).ok,
            oracle.align(real_pwm, tiny_window, expected));
  ASSERT_TRUE(batch.outcome(normal_task).ok);
  ASSERT_TRUE(oracle.align(real_pwm, window, expected));
  EXPECT_EQ(batch.outcome(normal_task).log_likelihood,
            expected.log_likelihood);
  expect_matrices_bitwise_equal(expected, batch.matrices(normal_task));
}

TEST(PhmmBatched, EngineReuseKeepsResultsExact) {
  // Recycle one engine across batches of shrinking then growing shapes; the
  // capacity-retention path must never leak state between batches.
  const PhmmParams params;
  const PairHmm oracle(params, BoundaryMode::kSemiGlobal);
  BatchedForward batch(params, BoundaryMode::kSemiGlobal, SimdLevel::kAuto);
  Rng rng(991);
  AlignmentMatrices expected;
  for (const std::size_t read_len : {40UL, 12UL, 28UL, 60UL, 8UL}) {
    batch.clear();
    std::vector<Problem> problems;
    for (int i = 0; i < 9; ++i) {
      problems.push_back(make_problem(rng, read_len, read_len + 16));
    }
    for (const auto& p : problems) batch.add(p.pwm, p.window);
    batch.run();
    for (std::size_t t = 0; t < problems.size(); ++t) {
      const bool expect_ok =
          oracle.align(problems[t].pwm, problems[t].window, expected);
      ASSERT_EQ(batch.outcome(t).ok, expect_ok);
      if (expect_ok) expect_matrices_bitwise_equal(expected, batch.matrices(t));
    }
  }
}

TEST(PhmmBatched, DrainModeMatchesOracleBitwise) {
  // run(consume) recycles a pool of pack-wide matrices instead of
  // materializing every task; each task must still be bit-identical to the
  // oracle at the moment it is drained, every task must drain exactly once,
  // and degenerate tasks must drain like failed aligns.
  auto problems = random_problems(0xD2A117, 48);
  problems.push_back(Problem{});  // degenerate: empty pwm and window
  const PhmmParams params;
  for (const SimdLevel level : levels_to_test()) {
    SCOPED_TRACE(phmm::simd_level_name(level));
    const PairHmm oracle(params, BoundaryMode::kSemiGlobal);
    BatchedForward batch(params, BoundaryMode::kSemiGlobal, level);
    for (std::size_t t = 0; t < problems.size(); ++t) {
      batch.add(problems[t].pwm, problems[t].window, t);
    }
    std::vector<unsigned char> seen(problems.size(), 0);
    AlignmentMatrices expected;
    batch.run([&](std::size_t t) {
      ASSERT_LT(t, problems.size());
      EXPECT_EQ(seen[t], 0) << "task " << t << " drained twice";
      seen[t] = 1;
      const bool expect_ok =
          oracle.align(problems[t].pwm, problems[t].window, expected);
      ASSERT_EQ(batch.outcome(t).ok, expect_ok) << "task " << t;
      if (!expect_ok) return;
      EXPECT_EQ(batch.outcome(t).log_likelihood, expected.log_likelihood);
      expect_matrices_bitwise_equal(expected, batch.matrices(t));
    });
    for (std::size_t t = 0; t < problems.size(); ++t) {
      EXPECT_EQ(seen[t], 1) << "task " << t << " never drained";
      // Outcomes outlive the drain; pooled matrices do not.
      EXPECT_EQ(batch.outcome(t).tag, t);
    }
  }
}

TEST(PhmmBatched, TimingsAccumulate) {
  const PhmmParams params;
  BatchedForward batch(params, BoundaryMode::kSemiGlobal, SimdLevel::kAuto);
  Rng rng(5);
  std::vector<Problem> problems;  // storage must outlive run()
  for (int i = 0; i < 8; ++i) problems.push_back(make_problem(rng, 30, 46));
  for (const auto& p : problems) batch.add(p.pwm, p.window);
  batch.run();
  const auto& t = batch.timings();
  EXPECT_EQ(t.tasks, 8u);
  EXPECT_EQ(t.cells, 8u * 31u * 47u);
  // Identical shapes and 8 % width == 0 at every level: packs are full, so
  // no padding cells are swept.
  EXPECT_EQ(t.swept_cells, 8u * 31u * 47u);
  EXPECT_GE(t.forward_seconds, 0.0);
  EXPECT_GE(t.backward_seconds, 0.0);
  batch.clear();
  EXPECT_EQ(batch.timings().tasks, 0u);
}

TEST(PhmmBatched, SimdLevelResolution) {
  const SimdLevel best = phmm::max_supported_simd_level();
  EXPECT_NE(best, SimdLevel::kAuto);
  // Explicit requests are clamped to the host, never rejected or raised.
  EXPECT_EQ(phmm::resolve_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_LE(phmm::resolve_simd_level(SimdLevel::kAvx2), best);

  // GNUMAP_SIMD drives kAuto only; explicit requests win over it.
  ::setenv("GNUMAP_SIMD", "scalar", 1);
  EXPECT_EQ(phmm::resolve_simd_level(SimdLevel::kAuto), SimdLevel::kScalar);
  if (best >= SimdLevel::kSse2) {
    EXPECT_EQ(phmm::resolve_simd_level(SimdLevel::kSse2), SimdLevel::kSse2);
  }
  ::setenv("GNUMAP_SIMD", "AVX2", 1);  // case-insensitive
  EXPECT_EQ(phmm::resolve_simd_level(SimdLevel::kAuto),
            std::min(SimdLevel::kAvx2, best));
  ::setenv("GNUMAP_SIMD", "bogus", 1);  // unknown values are ignored
  EXPECT_EQ(phmm::resolve_simd_level(SimdLevel::kAuto), best);
  ::unsetenv("GNUMAP_SIMD");
  EXPECT_EQ(phmm::resolve_simd_level(SimdLevel::kAuto), best);
}

TEST(PhmmBatched, ScoreReadsMatchesScoreReadExactly) {
  // End-to-end: the mapper's batched entry point must reproduce the serial
  // one bit for bit — sites, weights, contributions, and statistics.
  Rng rng(20260805);
  const std::string genome_seq = random_seq(rng, 4000);
  Genome genome;
  genome.add_contig("chr1", genome_seq);
  PipelineConfig config;
  const HashIndex index(genome, config.index);
  const ReadMapper mapper(genome, index, config);

  std::vector<Read> reads;
  for (int i = 0; i < 48; ++i) {
    const std::size_t len = 24 + rng.next_below(30);
    const std::size_t pos = rng.next_below(genome_seq.size() - len);
    std::string seq = genome_seq.substr(pos, len);
    for (char& ch : seq) {
      if (rng.bernoulli(0.03)) ch = "ACGT"[rng.next_below(4)];
    }
    reads.push_back(make_read(seq));
  }

  MapperWorkspace serial_ws, batched_ws;
  MapStats serial_stats, batched_stats;
  std::vector<std::vector<ScoredSite>> serial;
  serial.reserve(reads.size());
  for (const Read& read : reads) {
    serial.push_back(mapper.score_read(read, serial_ws, serial_stats));
  }
  const auto batched =
      mapper.score_reads(reads, batched_ws, batched_stats);

  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t r = 0; r < reads.size(); ++r) {
    ASSERT_EQ(batched[r].size(), serial[r].size()) << "read " << r;
    for (std::size_t s = 0; s < serial[r].size(); ++s) {
      const ScoredSite& a = serial[r][s];
      const ScoredSite& b = batched[r][s];
      EXPECT_EQ(b.window_begin, a.window_begin);
      EXPECT_EQ(b.reverse, a.reverse);
      EXPECT_EQ(b.log_likelihood, a.log_likelihood) << "read " << r;
      EXPECT_EQ(b.weight, a.weight) << "read " << r;
      ASSERT_EQ(b.contributions.tracks.size(), a.contributions.tracks.size());
      for (std::size_t j = 0; j < a.contributions.tracks.size(); ++j) {
        for (std::size_t k = 0; k < a.contributions.tracks[j].size(); ++k) {
          EXPECT_EQ(b.contributions.tracks[j][k], a.contributions.tracks[j][k]);
        }
      }
    }
  }
  EXPECT_EQ(batched_stats.reads_total, serial_stats.reads_total);
  EXPECT_EQ(batched_stats.reads_mapped, serial_stats.reads_mapped);
  EXPECT_EQ(batched_stats.candidates_evaluated,
            serial_stats.candidates_evaluated);
  EXPECT_EQ(batched_stats.sites_accumulated, serial_stats.sites_accumulated);
  EXPECT_EQ(batched_stats.dp_cells, serial_stats.dp_cells);
  // Only the batched path records kernel time.
  EXPECT_GE(batched_stats.phmm_forward_seconds, 0.0);
  EXPECT_EQ(serial_stats.phmm_forward_seconds, 0.0);
}

}  // namespace
}  // namespace gnumap

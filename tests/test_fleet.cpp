// Tests for the fleet subsystem: the mmap instant-start index file
// (round-trip bit-identity of seed hits, typed errors for every kind of
// file damage), the multi-genome registry (LRU eviction under a memory
// budget, typed EvictedError with a retry hint, unknown ids), the wire
// kEvicted retry loop end to end over real sockets, and the scatter/
// gather shard router's byte-identity with a single whole-genome daemon.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnumap/core/pipeline.hpp"
#include "gnumap/fleet/index_file.hpp"
#include "gnumap/fleet/registry.hpp"
#include "gnumap/fleet/router.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/serve/client.hpp"
#include "gnumap/serve/server.hpp"
#include "gnumap/serve/socket.hpp"
#include "gnumap/serve/wire.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

namespace fs = std::filesystem;

using serve::ClientOptions;
using serve::FrameType;
using serve::MappingClient;
using serve::MappingServer;
using serve::ServeOptions;
using serve::Socket;
using serve::WireError;
using serve::WireErrorCode;

// ---------------------------------------------------------------------------
// Helpers

Genome make_reference(std::uint64_t length, std::uint64_t seed = 42) {
  ReferenceGenOptions options;
  options.length = length;
  options.seed = seed;
  options.repeat_fraction = 0.0;
  options.n_fraction = 0.0;
  return generate_reference(options);
}

/// Renders a genome back to FASTA on disk (registry specs load by path).
std::string write_genome_fasta(const Genome& genome, const std::string& path) {
  std::vector<FastaRecord> records;
  const auto data = genome.data();
  for (std::uint32_t c = 0; c < genome.num_contigs(); ++c) {
    std::string seq;
    const GenomePos start = genome.contig_start(c);
    for (std::uint64_t i = 0; i < genome.contig_size(c); ++i) {
      seq.push_back(decode_base(data[start + i]));
    }
    records.emplace_back(genome.contig_name(c), std::move(seq));
  }
  write_fasta_file(path, records);
  return path;
}

struct Workload {
  Genome ref;
  std::vector<Read> reads;
  std::string fastq;
};

Workload make_workload(std::uint64_t length = 20000, double coverage = 6.0) {
  Workload w;
  w.ref = make_reference(length);
  CatalogGenOptions catalog_options;
  catalog_options.count = 12;
  const SnpCatalog catalog = generate_catalog(w.ref, catalog_options);
  const Genome individual = apply_catalog(w.ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  std::ostringstream fastq;
  write_fastq(fastq, w.reads);
  w.fastq = fastq.str();
  return w;
}

PipelineConfig small_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  config.threads = 2;
  config.stream_batch = 32;
  config.queue_depth = 2;
  config.min_parallel_reads = 0;
  return config;
}

ServeOptions test_options() {
  ServeOptions options;
  options.port = 0;  // ephemeral
  options.io_timeout_ms = 10'000;
  options.request_timeout_ms = 60'000;
  return options;
}

struct OfflineResult {
  std::string tsv;
  std::string sam;
};

OfflineResult offline_outputs(const Workload& w, const PipelineConfig& config) {
  VectorReadStream reads(w.reads, config.stream_batch);
  std::ostringstream sam;
  const PipelineResult result =
      run_pipeline_stream(w.ref, reads, config, nullptr, &sam);
  std::ostringstream tsv;
  write_snps_tsv(tsv, result.calls);
  return {tsv.str(), sam.str()};
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Copies `src` to `dst` with one byte flipped (damage injection).  XOR
/// guarantees the byte actually changes whatever its original value.
void copy_with_flip(const std::string& src, const std::string& dst,
                    std::size_t offset) {
  std::ifstream in(src, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x55);
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out << bytes;
}

void copy_truncated(const std::string& src, const std::string& dst,
                    std::size_t keep_bytes) {
  std::ifstream in(src, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(std::min(keep_bytes, bytes.size()));
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// Index file: round trip

TEST(IndexFile, RoundTripSeedHitsBitIdentical) {
  const Genome genome = make_reference(20000);
  HashIndexOptions options;
  options.k = 9;
  const HashIndex fresh(genome, options);

  const std::string path = temp_path("fleet_roundtrip.gidx");
  fleet::write_index_file(path, genome, fresh);
  const fleet::LoadedIndex loaded = fleet::load_index_file(path,
                                                           /*verify=*/true);

  // Genome facts survive the trip.
  EXPECT_EQ(loaded.genome.num_bases(), genome.num_bases());
  EXPECT_EQ(loaded.genome.padded_size(), genome.padded_size());
  ASSERT_EQ(loaded.genome.num_contigs(), genome.num_contigs());
  for (std::uint32_t c = 0; c < genome.num_contigs(); ++c) {
    EXPECT_EQ(loaded.genome.contig_name(c), genome.contig_name(c));
    EXPECT_EQ(loaded.genome.contig_size(c), genome.contig_size(c));
  }
  const auto a = loaded.genome.data();
  const auto b = genome.data();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));

  // Every k-mer's hit list and repeat mask match the fresh index bit for
  // bit — the mmap'ed index must seed identically to an in-process build.
  EXPECT_EQ(loaded.index.k(), fresh.k());
  EXPECT_EQ(loaded.index.num_entries(), fresh.num_entries());
  EXPECT_EQ(loaded.index.num_distinct_kmers(), fresh.num_distinct_kmers());
  for (Kmer kmer = 0; kmer < kmer_space(options.k); ++kmer) {
    const auto fresh_hits = fresh.lookup(kmer);
    const auto loaded_hits = loaded.index.lookup(kmer);
    ASSERT_EQ(fresh_hits.size(), loaded_hits.size()) << "kmer " << kmer;
    ASSERT_TRUE(std::equal(fresh_hits.begin(), fresh_hits.end(),
                           loaded_hits.begin()))
        << "kmer " << kmer;
    ASSERT_EQ(fresh.is_repeat_masked(kmer), loaded.index.is_repeat_masked(kmer))
        << "kmer " << kmer;
  }

  EXPECT_EQ(loaded.info.version, fleet::kIndexFileVersion);
  EXPECT_EQ(loaded.info.build_begin, 0u);
  EXPECT_EQ(loaded.info.build_end, 0u);
  EXPECT_EQ(loaded.info.file_bytes, fs::file_size(path));
}

TEST(IndexFile, ShardBuildRangeSurvivesRoundTrip) {
  const Genome genome = make_reference(20000);
  HashIndexOptions options;
  options.k = 9;
  const GenomePos begin = 4096, end = 12288;
  const HashIndex fresh = HashIndex::build_shard(genome, options, begin, end);

  const std::string path = temp_path("fleet_shard.gidx");
  fleet::write_index_file(path, genome, fresh, begin, end);
  const fleet::LoadedIndex loaded = fleet::load_index_file(path,
                                                           /*verify=*/true);
  EXPECT_EQ(loaded.info.build_begin, begin);
  EXPECT_EQ(loaded.info.build_end, end);
  EXPECT_EQ(loaded.index.num_entries(), fresh.num_entries());
  for (Kmer kmer = 0; kmer < kmer_space(options.k); ++kmer) {
    const auto fresh_hits = fresh.lookup(kmer);
    const auto loaded_hits = loaded.index.lookup(kmer);
    ASSERT_EQ(fresh_hits.size(), loaded_hits.size()) << "kmer " << kmer;
    ASSERT_TRUE(std::equal(fresh_hits.begin(), fresh_hits.end(),
                           loaded_hits.begin()))
        << "kmer " << kmer;
  }
}

// ---------------------------------------------------------------------------
// Index file: damage is typed, never UB

class IndexFileDamage : public ::testing::Test {
 protected:
  void SetUp() override {
    const Genome genome = make_reference(6000);
    HashIndexOptions options;
    options.k = 9;
    const HashIndex index(genome, options);
    // ctest runs the fixture's cases as separate parallel processes; a
    // shared scratch name would race on the atomic-rename publish.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = temp_path(std::string("fleet_damage_") + info->name() + ".gidx");
    fleet::write_index_file(path_, genome, index);
    file_bytes_ = static_cast<std::size_t>(fs::file_size(path_));
  }

  std::string path_;
  std::size_t file_bytes_ = 0;
};

TEST_F(IndexFileDamage, TruncationIsTyped) {
  const std::string dst = temp_path("fleet_truncated.gidx");
  // Empty, mid-header, header-only, mid-payload, and one-byte-short: every
  // prefix must fail typed instead of reading past the mapping.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{13}, std::size_t{80}, file_bytes_ / 2,
        file_bytes_ - 1}) {
    copy_truncated(path_, dst, keep);
    EXPECT_THROW(fleet::load_index_file(dst), ParseError)
        << "kept " << keep << " of " << file_bytes_ << " bytes";
  }
}

TEST_F(IndexFileDamage, BadMagicIsTyped) {
  const std::string dst = temp_path("fleet_badmagic.gidx");
  copy_with_flip(path_, dst, 0);
  EXPECT_THROW(fleet::load_index_file(dst), ParseError);
}

TEST_F(IndexFileDamage, WrongVersionIsTyped) {
  // The u32 version lives at offset 8; flipping it must fail even though
  // the rest of the header is intact (version gate or meta CRC, both
  // typed).
  const std::string dst = temp_path("fleet_badversion.gidx");
  copy_with_flip(path_, dst, 8);
  EXPECT_THROW(fleet::load_index_file(dst), ParseError);
}

TEST_F(IndexFileDamage, CorruptMetadataIsTyped) {
  // Damage inside the section table (just past the 80-byte header).
  const std::string dst = temp_path("fleet_badmeta.gidx");
  copy_with_flip(path_, dst, 92);
  EXPECT_THROW(fleet::load_index_file(dst), ParseError);
}

TEST_F(IndexFileDamage, CorruptPayloadCaughtByVerify) {
  // A flipped byte deep in a section body leaves the metadata intact; the
  // cheap load accepts it, the verifying load must not.
  const std::string dst = temp_path("fleet_badpayload.gidx");
  copy_with_flip(path_, dst, 80 + 5 * 24 + 512);
  EXPECT_THROW(fleet::load_index_file(dst, /*verify=*/true), ParseError);
}

// ---------------------------------------------------------------------------
// Registry: LRU eviction and typed kEvicted

TEST(Registry, LruEvictionAndEvictedError) {
  const Genome ga = make_reference(16000, /*seed=*/1);
  const Genome gb = make_reference(16000, /*seed=*/2);
  std::vector<fleet::GenomeSpec> specs(2);
  specs[0].id = "alpha";
  specs[0].path = write_genome_fasta(ga, temp_path("fleet_alpha.fa"));
  specs[1].id = "beta";
  specs[1].path = write_genome_fasta(gb, temp_path("fleet_beta.fa"));

  PipelineConfig config = small_config();

  // Probe pass without a budget to learn each genome's resident bytes.
  std::uint64_t bytes_a = 0, bytes_b = 0;
  {
    fleet::GenomeRegistry probe(specs, config, fleet::RegistryOptions{});
    probe.acquire("alpha");
    probe.acquire("beta");
    for (const auto& row : probe.rows()) {
      (row.id == "alpha" ? bytes_a : bytes_b) = row.bytes;
    }
  }
  ASSERT_GT(bytes_a, 0u);
  ASSERT_GT(bytes_b, 0u);

  // Budget admits either genome alone but never both.
  fleet::RegistryOptions options;
  options.memory_budget_bytes = std::max(bytes_a, bytes_b) + 1;
  options.evicted_retry_ms = 1234;
  fleet::GenomeRegistry registry(specs, config, options);

  EXPECT_THROW(registry.acquire("nope"), fleet::UnknownGenomeError);

  fleet::GenomeLease lease_a = registry.acquire("alpha");
  EXPECT_EQ(registry.resident_bytes(), bytes_a);

  // alpha is held by a live lease, so beta cannot be admitted: typed
  // EvictedError carrying the configured retry hint, not a hang or an
  // eviction under a running request.
  try {
    registry.acquire("beta");
    FAIL() << "acquire(beta) should have thrown EvictedError";
  } catch (const fleet::EvictedError& e) {
    EXPECT_EQ(e.retry_after_ms(), 1234u);
  }
  EXPECT_EQ(registry.evictions(), 0u);

  // Once the lease drops, beta evicts idle alpha (LRU) and loads.
  lease_a.reset();
  fleet::GenomeLease lease_b = registry.acquire("beta");
  EXPECT_EQ(lease_b->id, "beta");
  EXPECT_EQ(registry.evictions(), 1u);
  EXPECT_EQ(registry.resident_bytes(), bytes_b);
  for (const auto& row : registry.rows()) {
    if (row.id == "alpha") {
      EXPECT_FALSE(row.resident);
      EXPECT_EQ(row.evictions, 1u);
    }
    if (row.id == "beta") EXPECT_TRUE(row.resident);
  }

  // "" resolves to the default (first spec) and swaps beta back out.
  lease_b.reset();
  fleet::GenomeLease lease_default = registry.acquire("");
  EXPECT_EQ(lease_default->id, "alpha");
  EXPECT_EQ(registry.evictions(), 2u);
}

// ---------------------------------------------------------------------------
// Wire: kEvicted answers retry like BUSY

TEST(FleetServe, EvictedAnswerRetriesAndSucceeds) {
  const Workload wa = make_workload(16000);
  Workload wb;
  wb.ref = make_reference(16000, /*seed=*/7);
  ReadSimOptions sim_options;
  sim_options.coverage = 4.0;
  wb.reads = strip_metadata(simulate_reads(wb.ref, sim_options));
  std::ostringstream fastq_b;
  write_fastq(fastq_b, wb.reads);
  wb.fastq = fastq_b.str();

  std::vector<fleet::GenomeSpec> specs(2);
  specs[0].id = "alpha";
  specs[0].path = write_genome_fasta(wa.ref, temp_path("fleet_srv_a.fa"));
  specs[1].id = "beta";
  specs[1].path = write_genome_fasta(wb.ref, temp_path("fleet_srv_b.fa"));

  PipelineConfig config = small_config();

  std::uint64_t budget = 0;
  {
    fleet::GenomeRegistry probe(specs, config, fleet::RegistryOptions{});
    probe.acquire("alpha");
    probe.acquire("beta");
    for (const auto& row : probe.rows()) {
      budget = std::max(budget, row.bytes);
    }
  }

  ServeOptions options = test_options();
  options.registry_memory_budget_bytes = budget + 1;
  options.evicted_retry_ms = 50;
  MappingServer server(specs, config, options);
  server.start();

  // A raw v4 request pins alpha mid-request: MAP_BEGIN + MAP_GO, then the
  // upload stalls while the lease is held.
  Socket raw = serve::connect_tcp("127.0.0.1", server.port(), 5'000);
  serve::write_frame(raw, FrameType::kHello,
                     serve::encode_hello(serve::kProtocolVersion, "pin-alpha"),
                     5'000);
  auto hello = serve::read_frame(raw, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(hello.has_value());
  ASSERT_EQ(hello->type, FrameType::kHelloOk);
  serve::MapBeginInfo begin;
  begin.genome_id = "alpha";
  serve::write_frame(raw, FrameType::kMapBegin, serve::encode_map_begin(begin),
                     5'000);
  auto go = serve::read_frame(raw, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(go.has_value());
  ASSERT_EQ(go->type, FrameType::kMapGo);

  // Meanwhile a client asks for beta: the budget cannot admit it while
  // alpha is leased, so the server answers kEvicted + retry hint and the
  // client backs off and retries — like BUSY, nothing was uploaded yet.
  ClientOptions client_options;
  client_options.port = server.port();
  client_options.genome_id = "beta";
  client_options.busy_retries = 100;
  client_options.backoff_base_ms = 10;
  client_options.backoff_max_ms = 50;
  serve::MapOutcome outcome;
  std::string tsv_text;
  std::thread mapper([&] {
    MappingClient client(client_options);
    std::istringstream fastq(wb.fastq);
    std::ostringstream tsv;
    outcome = client.map(fastq, tsv);
    tsv_text = tsv.str();
  });

  // Hold alpha long enough for at least one kEvicted round trip, then
  // finish the pinned request so beta can evict it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  serve::write_frame(raw, FrameType::kMapEnd, "", 5'000);
  for (;;) {
    auto frame = serve::read_frame(raw, serve::kDefaultMaxFrameBytes, 30'000);
    ASSERT_TRUE(frame.has_value()) << "pinned request died before MAP_DONE";
    if (frame->type == FrameType::kMapDone) break;
  }
  raw.close();

  mapper.join();
  EXPECT_FALSE(outcome.busy);
  EXPECT_GE(outcome.busy_answers, 1) << "client never saw a kEvicted answer";
  EXPECT_EQ(outcome.stats.at("genome_id"), "beta");

  // The retried request's calls match the offline pipeline on beta.
  VectorReadStream reads(wb.reads, config.stream_batch);
  const PipelineResult offline =
      run_pipeline_stream(wb.ref, reads, config, nullptr, nullptr);
  std::ostringstream expected;
  write_snps_tsv(expected, offline.calls);
  EXPECT_EQ(tsv_text, expected.str());

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Router: byte identity with a single whole-genome daemon

TEST(Router, ScatterGatherIsByteIdenticalToSingleDaemon) {
  const Workload w = make_workload(24000);
  PipelineConfig config = small_config();
  const OfflineResult offline = offline_outputs(w, config);

  // Single whole-genome daemon.
  ServeOptions single_options = test_options();
  MappingServer single(w.ref, config, single_options);
  single.start();

  std::string single_tsv, single_sam;
  {
    ClientOptions client_options;
    client_options.port = single.port();
    MappingClient client(client_options);
    std::istringstream fastq(w.fastq);
    std::ostringstream tsv, sam;
    const auto outcome = client.map(fastq, tsv, &sam);
    ASSERT_FALSE(outcome.busy);
    single_tsv = tsv.str();
    single_sam = sam.str();
  }
  EXPECT_EQ(single_tsv, offline.tsv);
  EXPECT_EQ(single_sam, offline.sam);

  // Two shard backends, each owning half the genome, plus the router.
  ServeOptions shard0_options = test_options();
  shard0_options.shard_index = 0;
  shard0_options.shard_count = 2;
  ServeOptions shard1_options = test_options();
  shard1_options.shard_index = 1;
  shard1_options.shard_count = 2;
  MappingServer shard0(w.ref, config, shard0_options);
  MappingServer shard1(w.ref, config, shard1_options);
  shard0.start();
  shard1.start();

  fleet::RouterOptions router_options;
  router_options.backends.push_back({"127.0.0.1", shard0.port()});
  router_options.backends.push_back({"127.0.0.1", shard1.port()});
  fleet::RouterServer router(w.ref, config, router_options);
  router.start();

  std::string routed_tsv, routed_sam;
  {
    ClientOptions client_options;
    client_options.port = router.port();
    MappingClient client(client_options);
    std::istringstream fastq(w.fastq);
    std::ostringstream tsv, sam;
    const auto outcome = client.map(fastq, tsv, &sam);
    ASSERT_FALSE(outcome.busy);
    EXPECT_EQ(outcome.stats.at("router_shards"), "2");
    EXPECT_EQ(outcome.stats.at("reads_total"),
              std::to_string(w.reads.size()));
    routed_tsv = tsv.str();
    routed_sam = sam.str();
  }

  // The linchpin: scatter/gather must not change a single output byte.
  EXPECT_EQ(routed_tsv, single_tsv);
  EXPECT_EQ(routed_sam, single_sam);

  router.request_stop();
  router.wait();
  shard0.request_stop();
  shard1.request_stop();
  shard0.wait();
  shard1.wait();
  single.request_stop();
  single.wait();
}

// ---------------------------------------------------------------------------
// Server: registry facts on the wire

TEST(FleetServe, StatsCarryRegistryAndLoadTime) {
  const Workload w = make_workload(16000);
  PipelineConfig config = small_config();
  std::vector<fleet::GenomeSpec> specs(1);
  specs[0].id = "main";
  specs[0].path = write_genome_fasta(w.ref, temp_path("fleet_stats.fa"));

  MappingServer server(specs, config, test_options());
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  const std::string stats = client.stats();
  EXPECT_NE(stats.find("registry_genomes=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("registry_resident_bytes="), std::string::npos);
  EXPECT_NE(stats.find("registry_evictions_total=0"), std::string::npos);
  EXPECT_NE(stats.find("index_load_seconds="), std::string::npos);

  // MAP_DONE names the genome that served the request.
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv;
  const auto outcome = client.map(fastq, tsv);
  ASSERT_FALSE(outcome.busy);
  EXPECT_EQ(outcome.stats.at("genome_id"), "main");
  EXPECT_NE(outcome.stats.find("index_load_seconds"), outcome.stats.end());

  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace gnumap

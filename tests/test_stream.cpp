// Tests for the streaming read pipeline: BatchQueue/ReorderBuffer, the
// ReadStream sources, FASTQ robustness, and the ordering/memory guarantees
// of the staged pipeline — byte-identical output across thread counts and
// between the vector and streaming paths (shared-memory and distributed).
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnumap/core/dist_modes.hpp"
#include "gnumap/core/pipeline.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/gzip_stream.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/batch_queue.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

// ---------------------------------------------------------------------------
// BatchQueue

TEST(BatchQueue, FifoAndDrainsAfterClose) {
  BatchQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BatchQueue, PushAfterCloseReturnsFalse) {
  BatchQueue<int> queue(2);
  queue.close();
  EXPECT_FALSE(queue.push(1));
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BatchQueue, BackpressureBoundsQueueSize) {
  BatchQueue<int> queue(2);
  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) queue.push(i);
    queue.close();
  });
  int expected = 0;
  while (auto item = queue.pop()) {
    EXPECT_EQ(*item, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, 50);
  // The producer ran far ahead of the consumer but could never buffer more
  // than the capacity.
  EXPECT_LE(queue.peak_size(), 2u);
}

// ---------------------------------------------------------------------------
// ReorderBuffer

TEST(ReorderBuffer, RestoresInputOrder) {
  ReorderBuffer<int> reorder(8);
  // Push 0..7 in reverse from a helper thread; every seq is inside the
  // admission window so none of them block.
  std::thread producer([&] {
    for (int seq = 7; seq >= 0; --seq) {
      EXPECT_TRUE(reorder.push(static_cast<std::uint64_t>(seq), seq * 10));
    }
    reorder.close();
  });
  for (int seq = 0; seq < 8; ++seq) {
    const auto item = reorder.pop_next();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, seq * 10);
  }
  EXPECT_FALSE(reorder.pop_next().has_value());
  producer.join();
}

TEST(ReorderBuffer, AdmissionWindowBlocksFarAheadItems) {
  ReorderBuffer<int> reorder(2);
  std::atomic<bool> parked_far_item{false};
  // seq 2 is outside the window while next_seq == 0; the push must wait
  // until the drain advances.
  std::thread producer([&] {
    EXPECT_TRUE(reorder.push(2, 22));
    parked_far_item = true;
  });
  EXPECT_TRUE(reorder.push(1, 11));
  EXPECT_FALSE(parked_far_item.load());
  EXPECT_TRUE(reorder.push(0, 0));
  EXPECT_EQ(reorder.pop_next(), 0);   // next_seq -> 1, window admits seq 2
  EXPECT_EQ(reorder.pop_next(), 11);
  EXPECT_EQ(reorder.pop_next(), 22);
  producer.join();
  EXPECT_TRUE(parked_far_item.load());
}

TEST(ReorderBuffer, CloseUnblocksWaitersAndKeepsPrefix) {
  ReorderBuffer<int> reorder(2);
  EXPECT_TRUE(reorder.push(0, 100));
  std::thread blocked([&] {
    // Blocks (window is [0, 2)); close() must release it with false.
    EXPECT_FALSE(reorder.push(5, 555));
  });
  reorder.close();
  blocked.join();
  // The in-order prefix parked before close() still drains.
  EXPECT_EQ(reorder.pop_next(), 100);
  EXPECT_FALSE(reorder.pop_next().has_value());
}

// ---------------------------------------------------------------------------
// Queue edge cases: degenerate capacities, window wraparound far past the
// capacity, and close() racing blocked producers and consumers.

TEST(BatchQueue, ZeroCapacityIsRejected) {
  EXPECT_THROW(BatchQueue<int>(0), ConfigError);
  EXPECT_THROW(ReorderBuffer<int>(0), ConfigError);
}

TEST(BatchQueue, CapacityOneStillMovesEveryItem) {
  BatchQueue<int> queue(1);
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) queue.push(i);
    queue.close();
  });
  int expected = 0;
  while (auto item = queue.pop()) EXPECT_EQ(*item, expected++);
  producer.join();
  EXPECT_EQ(expected, 200);
  EXPECT_EQ(queue.peak_size(), 1u);
}

TEST(ReorderBuffer, CapacityOneSerializesProducers) {
  // With a window of one, only the exact next item is ever admissible, so
  // out-of-order workers are fully serialized — and must still finish.
  ReorderBuffer<int> reorder(1);
  constexpr int kItems = 100;
  std::atomic<int> next_claim{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const int seq = next_claim.fetch_add(1);
        if (seq >= kItems) return;
        EXPECT_TRUE(reorder.push(static_cast<std::uint64_t>(seq), seq));
      }
    });
  }
  for (int seq = 0; seq < kItems; ++seq) {
    const auto item = reorder.pop_next();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, seq);
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(reorder.peak_pending(), 1u);
}

TEST(ReorderBuffer, WindowSlidesFarPastCapacity) {
  // The admission window wraps around the capacity many times over; order
  // and the pending bound must hold across every wrap.
  ReorderBuffer<std::uint64_t> reorder(3);
  constexpr std::uint64_t kItems = 3000;  // 1000 full window turns
  std::atomic<std::uint64_t> next_claim{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::uint64_t seq = next_claim.fetch_add(1);
        if (seq >= kItems) return;
        EXPECT_TRUE(reorder.push(seq, seq * 7));
      }
    });
  }
  for (std::uint64_t seq = 0; seq < kItems; ++seq) {
    const auto item = reorder.pop_next();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, seq * 7);
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(reorder.peak_pending(), 3u);
}

TEST(BatchQueue, ConcurrentCloseReleasesBlockedProducersAndConsumers) {
  BatchQueue<int> queue(2);
  EXPECT_TRUE(queue.push(0));
  EXPECT_TRUE(queue.push(1));  // full: further pushes block

  std::atomic<int> refused_pushes{0};
  std::vector<std::thread> blocked;
  for (int t = 0; t < 3; ++t) {
    blocked.emplace_back([&] {
      if (!queue.push(99)) ++refused_pushes;
    });
  }
  // Two closers racing each other and the blocked producers: close() is
  // idempotent and must release every waiter exactly once.
  std::thread closer1([&] { queue.close(); });
  std::thread closer2([&] { queue.close(); });
  closer1.join();
  closer2.join();
  for (auto& t : blocked) t.join();
  EXPECT_EQ(refused_pushes.load(), 3);

  // Items queued before the close still drain, then poppers see the end.
  EXPECT_EQ(queue.pop(), 0);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ReorderBuffer, ConcurrentCloseWhileProducersBlockedBeyondWindow) {
  ReorderBuffer<int> reorder(2);
  std::atomic<int> refused{0};
  std::vector<std::thread> blocked;
  for (int t = 0; t < 3; ++t) {
    blocked.emplace_back([&, t] {
      // All beyond the [0, 2) window, so all park until close().
      if (!reorder.push(static_cast<std::uint64_t>(10 + t), t)) ++refused;
    });
  }
  std::thread waiting_drain([&] {
    // Blocks: seq 0 never arrives; close() must deliver nullopt.
    EXPECT_FALSE(reorder.pop_next().has_value());
  });
  reorder.close();
  for (auto& t : blocked) t.join();
  waiting_drain.join();
  EXPECT_EQ(refused.load(), 3);
}

// ---------------------------------------------------------------------------
// VectorReadStream

std::vector<Read> tiny_reads(std::size_t n) {
  std::vector<Read> reads(n);
  for (std::size_t i = 0; i < n; ++i) {
    reads[i].name = "r" + std::to_string(i);
    reads[i].bases = {0, 1, 2, 3};
    reads[i].quals = {40, 40, 40, 40};
  }
  return reads;
}

TEST(VectorStream, BatchesCursorResetSkip) {
  const auto reads = tiny_reads(10);
  VectorReadStream stream(reads, 4);
  EXPECT_EQ(stream.size_hint(), 10u);
  EXPECT_EQ(stream.batch_size(), 4u);

  ReadBatch batch;
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.first_index, 0u);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.reads[0].name, "r0");
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.first_index, 4u);
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.size(), 2u);  // final partial batch
  EXPECT_EQ(stream.cursor(), 10u);
  EXPECT_FALSE(stream.next(batch));
  EXPECT_TRUE(batch.empty());

  EXPECT_TRUE(stream.reset());
  EXPECT_EQ(stream.cursor(), 0u);
  EXPECT_EQ(stream.skip(7), 7u);
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.first_index, 7u);
  EXPECT_EQ(batch.reads[0].name, "r7");
  EXPECT_EQ(stream.skip(99), 0u);  // past the end
}

TEST(VectorStream, RejectsZeroBatchSize) {
  const auto reads = tiny_reads(2);
  EXPECT_THROW(VectorReadStream(reads, 0), ConfigError);
}

// ---------------------------------------------------------------------------
// FastqReadStream

constexpr const char* kFastqThree =
    "@r1\nACGT\n+\nIIII\n@r2\nGGTT\n+\n!!!!\n@r3\nTTAA\n+\nIIII\n";

TEST(FastqStream, DeliversRecordsWithCursor) {
  std::istringstream in(kFastqThree);
  FastqReadStream stream(in, 2);
  ReadBatch batch;
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.first_index, 0u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.reads[0].name, "r1");
  EXPECT_EQ(batch.reads[1].name, "r2");
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.first_index, 2u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.reads[0].name, "r3");
  EXPECT_FALSE(stream.next(batch));
  EXPECT_EQ(stream.cursor(), 3u);
  EXPECT_GT(stream.bytes_decoded(), 0u);
  // String streams can seek, so reset() re-parses from the top.
  EXPECT_TRUE(stream.reset());
  EXPECT_EQ(stream.cursor(), 0u);
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.reads[0].name, "r1");
}

TEST(FastqStream, SkipParsesPastRecords) {
  std::istringstream in(kFastqThree);
  FastqReadStream stream(in, 8);
  EXPECT_EQ(stream.skip(2), 2u);
  EXPECT_EQ(stream.cursor(), 2u);
  ReadBatch batch;
  ASSERT_TRUE(stream.next(batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.first_index, 2u);
  EXPECT_EQ(batch.reads[0].name, "r3");
  EXPECT_EQ(stream.skip(1), 0u);  // exhausted
}

TEST(FastqStream, FileFormStreamsAndResets) {
  const std::string path = ::testing::TempDir() + "test_stream_reads.fastq";
  {
    std::ofstream out(path);
    out << kFastqThree;
  }
  FastqReadStream stream(path, 2);
  ReadBatch batch;
  std::size_t total = 0;
  while (stream.next(batch)) total += batch.size();
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(stream.reset());
  ASSERT_TRUE(stream.next(batch));
  EXPECT_EQ(batch.reads[0].name, "r1");
  std::remove(path.c_str());
}

TEST(FastqStream, MissingFileThrows) {
  EXPECT_THROW(FastqReadStream("/nonexistent/reads.fastq", 4), ParseError);
}

// ---------------------------------------------------------------------------
// FASTQ robustness: empty input, truncation, length mismatch — through both
// the vector API and the stream.

TEST(FastqRobustness, EmptyInputIsEmptyNotError) {
  std::istringstream vec_in("");
  EXPECT_TRUE(read_fastq(vec_in).empty());

  std::istringstream stream_in("");
  FastqReadStream stream(stream_in, 4);
  ReadBatch batch;
  EXPECT_FALSE(stream.next(batch));
  EXPECT_EQ(stream.cursor(), 0u);
}

TEST(FastqRobustness, LengthMismatchNamesSourceAndRecord) {
  // Second record has 2 quality values for 4 bases; the error must point at
  // the file and the record so a user can find the damage.
  const std::string text = "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\nII\n";
  std::istringstream in(text);
  try {
    read_fastq(in, kPhred33, "reads.fastq");
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("reads.fastq"), std::string::npos) << what;
    EXPECT_NE(what.find("FASTQ record 2"), std::string::npos) << what;
    EXPECT_NE(what.find("length mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("4 bases"), std::string::npos) << what;
    EXPECT_NE(what.find("2 quality values"), std::string::npos) << what;
  }

  std::istringstream stream_in(text);
  FastqReadStream stream(stream_in, 8, kPhred33, "reads.fastq");
  ReadBatch batch;
  try {
    stream.next(batch);
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("reads.fastq: FASTQ record 2"), std::string::npos)
        << what;
  }
}

TEST(FastqRobustness, TruncatedFinalRecordNamesRecord) {
  const std::string text = "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\n";
  std::istringstream vec_in(text);
  EXPECT_THROW(read_fastq(vec_in), ParseError);

  std::istringstream stream_in(text);
  FastqReadStream stream(stream_in, 8);
  ReadBatch batch;
  try {
    stream.next(batch);
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated record"), std::string::npos) << what;
    EXPECT_NE(what.find("FASTQ record 2"), std::string::npos) << what;
  }
}

TEST(FastqRobustness, FilePathAppearsInFileErrors) {
  const std::string path = ::testing::TempDir() + "test_stream_damaged.fastq";
  {
    std::ofstream out(path);
    out << "@r1\nACGT\n+\nII\n";
  }
  try {
    read_fastq_file(path);
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Gzip FASTQ: content-detected decompression in front of the same stream.

std::vector<Read> drain_stream(ReadStream& stream) {
  std::vector<Read> all;
  ReadBatch batch;
  while (stream.next(batch)) {
    for (auto& read : batch.reads) all.push_back(std::move(read));
  }
  return all;
}

void expect_same_reads(const std::vector<Read>& expected,
                       const std::vector<Read>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].name, actual[i].name);
    EXPECT_EQ(expected[i].bases, actual[i].bases);
    EXPECT_EQ(expected[i].quals, actual[i].quals);
  }
}

TEST(GzipStream, RoundTripMatchesPlainStream) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const std::string path = "gzip_roundtrip_tmp.fastq.gz";
  {
    std::ofstream out(path, std::ios::binary);
    out << gzip_compress(kFastqThree);
  }
  std::istringstream plain_text(kFastqThree);
  FastqReadStream plain(plain_text, 2);
  auto gz = open_fastq_read_stream(path, 2);
  expect_same_reads(drain_stream(plain), drain_stream(*gz));
  std::remove(path.c_str());
}

TEST(GzipStream, FactoryDetectsByContentNotExtension) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  // A gzip payload behind a .fastq name still decompresses; a plain
  // payload behind a .gz name still parses directly.
  const std::string gz_path = "gzip_detect_tmp.fastq";
  const std::string plain_path = "gzip_detect_tmp2.fastq.gz";
  {
    std::ofstream out(gz_path, std::ios::binary);
    out << gzip_compress(kFastqThree);
  }
  {
    std::ofstream out(plain_path, std::ios::binary);
    out << kFastqThree;
  }
  auto from_gz = open_fastq_read_stream(gz_path, 2);
  auto from_plain = open_fastq_read_stream(plain_path, 2);
  expect_same_reads(drain_stream(*from_gz), drain_stream(*from_plain));
  std::remove(gz_path.c_str());
  std::remove(plain_path.c_str());
}

TEST(GzipStream, MultiMemberFilesConcatenate) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const std::string path = "gzip_multimember_tmp.fastq.gz";
  {
    // `cat a.gz b.gz`: two members, one logical stream.
    std::ofstream out(path, std::ios::binary);
    out << gzip_compress("@r1\nACGT\n+\nIIII\n")
        << gzip_compress("@r2\nGGTT\n+\n!!!!\n");
  }
  auto stream = open_fastq_read_stream(path, 4);
  const auto reads = drain_stream(*stream);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "r1");
  EXPECT_EQ(reads[1].name, "r2");
  std::remove(path.c_str());
}

TEST(GzipStream, ResetAndSkipBehaveLikePlainStream) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const std::string path = "gzip_reset_tmp.fastq.gz";
  {
    std::ofstream out(path, std::ios::binary);
    out << gzip_compress(kFastqThree);
  }
  auto stream = open_fastq_read_stream(path, 2);
  ReadBatch batch;
  ASSERT_TRUE(stream->next(batch));
  EXPECT_EQ(batch.first_index, 0u);
  ASSERT_TRUE(stream->reset());
  EXPECT_EQ(stream->cursor(), 0u);
  EXPECT_EQ(stream->skip(2), 2u);
  ASSERT_TRUE(stream->next(batch));
  EXPECT_EQ(batch.first_index, 2u);
  EXPECT_EQ(batch.reads[0].name, "r3");
  std::remove(path.c_str());
}

TEST(GzipStream, TruncatedFileRaisesParseError) {
  if (!gzip_available()) GTEST_SKIP() << "built without zlib";
  const std::string path = "gzip_truncated_tmp.fastq.gz";
  const std::string full = gzip_compress(kFastqThree);
  {
    std::ofstream out(path, std::ios::binary);
    out << full.substr(0, full.size() - 6);  // clip the trailer + data
  }
  auto stream = open_fastq_read_stream(path, 2);
  ReadBatch batch;
  EXPECT_THROW({
    while (stream->next(batch)) {
    }
  }, ParseError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Staged pipeline: ordering and memory guarantees.

struct Workload {
  Genome ref;
  SnpCatalog catalog;
  std::vector<Read> reads;
};

Workload make_workload(std::uint64_t length = 20000, double coverage = 6.0) {
  ReferenceGenOptions ref_options;
  ref_options.length = length;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  Workload w;
  w.ref = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 12;
  w.catalog = generate_catalog(w.ref, catalog_options);
  const Genome individual = apply_catalog(w.ref, w.catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  return w;
}

PipelineConfig stream_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  config.stream_batch = 32;
  config.queue_depth = 2;
  config.min_parallel_reads = 0;  // force the staged path on small inputs
  return config;
}

void expect_identical_calls(const std::vector<SnpCall>& expected,
                            const std::vector<SnpCall>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].contig, actual[i].contig);
    EXPECT_EQ(expected[i].position, actual[i].position);
    EXPECT_EQ(expected[i].ref, actual[i].ref);
    EXPECT_EQ(expected[i].allele1, actual[i].allele1);
    EXPECT_EQ(expected[i].allele2, actual[i].allele2);
    // Bit-identical, not approximately equal: the streaming path must
    // accumulate in exactly the serial order.
    EXPECT_EQ(expected[i].coverage, actual[i].coverage);
    EXPECT_EQ(expected[i].lrt_stat, actual[i].lrt_stat);
    EXPECT_EQ(expected[i].p_value, actual[i].p_value);
  }
}

std::string calls_tsv(const std::vector<SnpCall>& calls) {
  std::ostringstream out;
  write_snps_tsv(out, calls);
  return out.str();
}

TEST(StreamPipeline, ThreadedOutputByteIdenticalToSerial) {
  const Workload w = make_workload();
  PipelineConfig serial = stream_config();
  serial.threads = 1;
  PipelineConfig threaded = stream_config();
  threaded.threads = 4;

  std::ostringstream serial_sam, threaded_sam;
  const auto serial_result =
      run_pipeline_with_accumulator(w.ref, w.reads, serial, nullptr,
                                    &serial_sam);
  const auto threaded_result =
      run_pipeline_with_accumulator(w.ref, w.reads, threaded, nullptr,
                                    &threaded_sam);

  // SAM records, SNP TSV, and every call field must match byte for byte:
  // the reorder buffer drains batches in input order, and accumulation
  // order (float addition is not associative) matches the serial path.
  EXPECT_EQ(serial_sam.str(), threaded_sam.str());
  EXPECT_EQ(calls_tsv(serial_result.calls), calls_tsv(threaded_result.calls));
  expect_identical_calls(serial_result.calls, threaded_result.calls);
  EXPECT_EQ(serial_result.stats.reads_total, threaded_result.stats.reads_total);
  EXPECT_EQ(serial_result.stats.reads_mapped,
            threaded_result.stats.reads_mapped);
  EXPECT_GT(threaded_result.batches_decoded, 1u);
}

TEST(StreamPipeline, EightThreadsByteIdenticalIncludingAccumulator) {
  // Same invariant at a higher worker count, and one level deeper: the
  // final accumulator bytes must match too, which catches any reordering
  // of the worker-flattened delta replay (float addition is not
  // associative).
  const Workload w = make_workload();
  PipelineConfig serial = stream_config();
  serial.threads = 1;
  PipelineConfig threaded = stream_config();
  threaded.threads = 8;

  std::ostringstream serial_sam, threaded_sam;
  std::unique_ptr<Accumulator> serial_accum, threaded_accum;
  const auto serial_result = run_pipeline_with_accumulator(
      w.ref, w.reads, serial, &serial_accum, &serial_sam);
  const auto threaded_result = run_pipeline_with_accumulator(
      w.ref, w.reads, threaded, &threaded_accum, &threaded_sam);

  EXPECT_EQ(serial_sam.str(), threaded_sam.str());
  EXPECT_EQ(calls_tsv(serial_result.calls), calls_tsv(threaded_result.calls));
  expect_identical_calls(serial_result.calls, threaded_result.calls);
  ASSERT_NE(serial_accum, nullptr);
  ASSERT_NE(threaded_accum, nullptr);
  EXPECT_EQ(serial_accum->to_bytes(), threaded_accum->to_bytes());
  // Worker formatting actually ran and was accounted for.
  EXPECT_GT(threaded_result.output_bytes, 0u);
  EXPECT_EQ(threaded_result.output_bytes, serial_result.output_bytes);
}

TEST(StreamPipeline, WorkerFormatMatchesLegacyFormatInDrain) {
  // A/B the tentpole refactor against the pre-refactor drain: rendering in
  // the workers and splicing bytes must emit exactly what formatting
  // inside the drain used to.
  const Workload w = make_workload();
  PipelineConfig worker_format = stream_config();
  worker_format.threads = 4;
  PipelineConfig legacy = worker_format;
  legacy.format_in_drain = true;

  std::ostringstream worker_sam, legacy_sam;
  std::unique_ptr<Accumulator> worker_accum, legacy_accum;
  const auto worker_result = run_pipeline_with_accumulator(
      w.ref, w.reads, worker_format, &worker_accum, &worker_sam);
  const auto legacy_result = run_pipeline_with_accumulator(
      w.ref, w.reads, legacy, &legacy_accum, &legacy_sam);

  EXPECT_EQ(worker_sam.str(), legacy_sam.str());
  expect_identical_calls(worker_result.calls, legacy_result.calls);
  EXPECT_EQ(worker_accum->to_bytes(), legacy_accum->to_bytes());
  // The legacy path formats inside the drain, so its format time is folded
  // into splice_seconds; the worker path reports it separately.
  EXPECT_GT(worker_result.format_seconds, 0.0);
  EXPECT_EQ(legacy_result.format_seconds, 0.0);
}

TEST(StreamPipeline, TinyOutputBufferStillByteIdentical) {
  // A byte budget far below one rendered chunk forces maximal blocking in
  // the splicer; the in-order exemption must keep the pipeline live and
  // the output identical.
  const Workload w = make_workload();
  PipelineConfig serial = stream_config();
  serial.threads = 1;
  PipelineConfig squeezed = stream_config();
  squeezed.threads = 4;
  squeezed.output_buffer_bytes = 64;

  std::ostringstream serial_sam, squeezed_sam;
  const auto serial_result = run_pipeline_with_accumulator(
      w.ref, w.reads, serial, nullptr, &serial_sam);
  const auto squeezed_result = run_pipeline_with_accumulator(
      w.ref, w.reads, squeezed, nullptr, &squeezed_sam);

  EXPECT_EQ(serial_sam.str(), squeezed_sam.str());
  expect_identical_calls(serial_result.calls, squeezed_result.calls);
}

TEST(StreamPipeline, FastqStreamMatchesVectorPath) {
  const Workload w = make_workload();
  // Round-trip the simulated reads through FASTQ text so the FASTQ-backed
  // (unsized) stream is exercised end to end.
  std::ostringstream fastq;
  write_fastq(fastq, w.reads);

  PipelineConfig config = stream_config();
  config.threads = 4;

  std::ostringstream vector_sam, stream_sam;
  const auto vector_result = run_pipeline_with_accumulator(
      w.ref, w.reads, config, nullptr, &vector_sam);

  std::istringstream fastq_in(fastq.str());
  FastqReadStream stream(fastq_in, config.stream_batch);
  const auto stream_result =
      run_pipeline_stream(w.ref, stream, config, nullptr, &stream_sam);

  EXPECT_EQ(vector_sam.str(), stream_sam.str());
  expect_identical_calls(vector_result.calls, stream_result.calls);
}

TEST(StreamPipeline, InFlightPeakBoundedIndependentOfDatasetSize) {
  PipelineConfig config = stream_config();
  config.threads = 4;
  config.stream_batch = 8;
  config.queue_depth = 2;
  // Worst case: one batch in the decoder's hands, queue_depth queued,
  // threads being scored, and queue_depth + threads parked in the reorder
  // window.
  const std::uint64_t bound =
      (2 * (config.queue_depth + 4) + 1) * config.stream_batch;

  const Workload small = make_workload(15000, 3.0);
  const Workload large = make_workload(15000, 12.0);
  ASSERT_GT(large.reads.size(), bound * 3);

  const auto small_result = run_pipeline(small.ref, small.reads, config);
  const auto large_result = run_pipeline(large.ref, large.reads, config);
  EXPECT_GT(small_result.reads_in_flight_peak, 0u);
  EXPECT_LE(small_result.reads_in_flight_peak, bound);
  // The bound does not grow with the dataset: 4x the reads, same ceiling.
  EXPECT_LE(large_result.reads_in_flight_peak, bound);
}

// ---------------------------------------------------------------------------
// Distributed streaming: byte-identical to the vector overload, and
// fault-tolerant via stream-cursor checkpoints.

TEST(StreamDist, ReadPartitionMatchesVectorPathExactly) {
  const Workload w = make_workload();
  const PipelineConfig config = stream_config();
  DistOptions options;
  options.ranks = 3;
  options.mode = DistMode::kReadPartition;
  options.serialize_compute = false;

  const auto vector_result = run_distributed(w.ref, w.reads, config, options);
  VectorReadStream stream(w.reads, config.stream_batch);
  const auto stream_result = run_distributed(w.ref, stream, config, options);

  // Sized stream -> the pump follows the vector path's shard boundaries;
  // per-rank accumulators, the reduce, and the calls are all bit-identical.
  expect_identical_calls(vector_result.calls, stream_result.calls);
  EXPECT_EQ(vector_result.stats.reads_total, stream_result.stats.reads_total);
  EXPECT_EQ(vector_result.stats.reads_mapped,
            stream_result.stats.reads_mapped);
  // Rank-local TSV formatting: the document rank 0 assembled must equal a
  // root-side render of the final calls — i.e. the serial bytes.
  EXPECT_EQ(vector_result.tsv, calls_tsv(vector_result.calls));
  EXPECT_EQ(stream_result.tsv, vector_result.tsv);
}

TEST(StreamDist, GenomePartitionMatchesVectorPathExactly) {
  const Workload w = make_workload();
  const PipelineConfig config = stream_config();
  DistOptions options;
  options.ranks = 3;
  options.mode = DistMode::kGenomePartition;
  options.serialize_compute = false;
  options.batch_size = 128;

  const auto vector_result = run_distributed(w.ref, w.reads, config, options);

  // Prescan path (max_read_len measured from the stream)...
  VectorReadStream stream(w.reads, config.stream_batch);
  const auto stream_result = run_distributed(w.ref, stream, config, options);
  expect_identical_calls(vector_result.calls, stream_result.calls);
  EXPECT_EQ(vector_result.stats.reads_total, stream_result.stats.reads_total);
  EXPECT_EQ(vector_result.stats.reads_mapped,
            stream_result.stats.reads_mapped);
  // Every rank rendered its own segment's rows; the root's rank-order
  // splice must be byte-identical to rendering the gathered calls.
  EXPECT_EQ(vector_result.tsv, calls_tsv(vector_result.calls));
  EXPECT_EQ(stream_result.tsv, vector_result.tsv);

  // ...and the hint path (no prescan needed) must agree too.
  std::uint32_t max_len = 0;
  for (const auto& read : w.reads) {
    max_len = std::max(max_len, static_cast<std::uint32_t>(read.length()));
  }
  options.max_read_len = max_len;
  VectorReadStream hinted(w.reads, config.stream_batch);
  const auto hinted_result = run_distributed(w.ref, hinted, config, options);
  expect_identical_calls(vector_result.calls, hinted_result.calls);
}

TEST(StreamDist, ReadPartitionCrashRecoveryMatchesFaultFree) {
  const Workload w = make_workload();
  const PipelineConfig config = stream_config();
  DistOptions options;
  options.ranks = 3;
  options.mode = DistMode::kReadPartition;
  options.serialize_compute = false;

  VectorReadStream clean_stream(w.reads, config.stream_batch);
  const auto clean = run_distributed(w.ref, clean_stream, config, options);

  options.faults.crash(1, 40);  // mid-shard, between checkpoints
  options.recv_timeout_seconds = 5.0;
  VectorReadStream faulty_stream(w.reads, config.stream_batch);
  const auto faulty = run_distributed(w.ref, faulty_stream, config, options);

  EXPECT_GE(faulty.recovery.attempts, 2);
  EXPECT_EQ(faulty.recovery.failed_ranks.front(), 1);
  expect_identical_calls(clean.calls, faulty.calls);
  // Recovery replays from checkpoints; the rendered TSV must not carry any
  // bytes from the aborted attempt.
  EXPECT_EQ(faulty.tsv, clean.tsv);
  EXPECT_EQ(faulty.tsv, calls_tsv(faulty.calls));
}

TEST(StreamDist, GenomePartitionCrashRecoveryMatchesFaultFree) {
  const Workload w = make_workload();
  const PipelineConfig config = stream_config();
  DistOptions options;
  options.ranks = 3;
  options.mode = DistMode::kGenomePartition;
  options.serialize_compute = false;
  options.batch_size = 128;

  VectorReadStream clean_stream(w.reads, config.stream_batch);
  const auto clean = run_distributed(w.ref, clean_stream, config, options);

  options.faults.crash(1, 5);  // during an early broadcast batch
  options.recv_timeout_seconds = 5.0;
  VectorReadStream faulty_stream(w.reads, config.stream_batch);
  const auto faulty = run_distributed(w.ref, faulty_stream, config, options);

  EXPECT_GE(faulty.recovery.attempts, 2);
  expect_identical_calls(clean.calls, faulty.calls);
  // Same for the genome-partition splice: rank-local bodies gathered on
  // the final attempt only.
  EXPECT_EQ(faulty.tsv, clean.tsv);
  EXPECT_EQ(faulty.tsv, calls_tsv(faulty.calls));
}

TEST(StreamDist, RequiresStreamAtStart) {
  const auto reads = tiny_reads(8);
  VectorReadStream stream(reads, 4);
  ReadBatch batch;
  ASSERT_TRUE(stream.next(batch));  // advance the cursor

  Genome genome;
  genome.add_contig("chr1", std::string(2000, 'A'));
  PipelineConfig config;
  DistOptions options;
  EXPECT_THROW(run_distributed(genome, stream, config, options), ConfigError);
}

}  // namespace
}  // namespace gnumap

// Tests for the mpsim message-passing substrate and the cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "gnumap/mpsim/communicator.hpp"
#include "gnumap/mpsim/cost_model.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

class WorldSizes : public ::testing::TestWithParam<int> {};

TEST_P(WorldSizes, PointToPointRing) {
  const int p = GetParam();
  std::vector<std::uint64_t> received(static_cast<std::size_t>(p), 0);
  run_world(p, [&](Communicator& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    comm.send_u64(next, 5, static_cast<std::uint64_t>(comm.rank()) * 10);
    received[static_cast<std::size_t>(comm.rank())] = comm.recv_u64(prev, 5);
  });
  for (int r = 0; r < p; ++r) {
    const int prev = (r + p - 1) % p;
    EXPECT_EQ(received[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(prev) * 10);
  }
}

TEST_P(WorldSizes, BarrierSynchronizes) {
  const int p = GetParam();
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  run_world(p, [&](Communicator& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    if (phase1.load() != p) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(WorldSizes, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    std::vector<std::vector<std::uint8_t>> results(
        static_cast<std::size_t>(p));
    run_world(p, [&](Communicator& comm) {
      std::vector<std::uint8_t> data;
      if (comm.rank() == root) data = {1, 2, 3, 4, 5};
      results[static_cast<std::size_t>(comm.rank())] =
          comm.bcast(root, std::move(data));
    });
    for (const auto& r : results) {
      EXPECT_EQ(r, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
    }
  }
}

TEST_P(WorldSizes, ReduceSumToRoot) {
  const int p = GetParam();
  std::vector<double> root_result;
  run_world(p, [&](Communicator& comm) {
    std::vector<double> values = {static_cast<double>(comm.rank()), 1.0,
                                  2.0 * comm.rank()};
    comm.reduce_sum(values, 0);
    if (comm.rank() == 0) root_result = values;
  });
  const double rank_sum = p * (p - 1) / 2.0;
  ASSERT_EQ(root_result.size(), 3u);
  EXPECT_DOUBLE_EQ(root_result[0], rank_sum);
  EXPECT_DOUBLE_EQ(root_result[1], static_cast<double>(p));
  EXPECT_DOUBLE_EQ(root_result[2], 2.0 * rank_sum);
}

TEST_P(WorldSizes, AllreduceSumEverywhere) {
  const int p = GetParam();
  std::vector<double> results(static_cast<std::size_t>(p), 0.0);
  run_world(p, [&](Communicator& comm) {
    std::vector<double> values = {1.0};
    comm.allreduce_sum(values);
    results[static_cast<std::size_t>(comm.rank())] = values[0];
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, p);
}

TEST_P(WorldSizes, GatherCollectsInRankOrder) {
  const int p = GetParam();
  std::vector<std::vector<std::uint8_t>> gathered;
  run_world(p, [&](Communicator& comm) {
    std::vector<std::uint8_t> mine = {
        static_cast<std::uint8_t>(comm.rank() + 1)};
    auto result = comm.gather(0, std::move(mine));
    if (comm.rank() == 0) gathered = std::move(result);
  });
  ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(gathered[static_cast<std::size_t>(r)].size(), 1u);
    EXPECT_EQ(gathered[static_cast<std::size_t>(r)][0], r + 1);
  }
}

TEST_P(WorldSizes, BackToBackCollectivesDoNotCrossTalk) {
  const int p = GetParam();
  std::vector<double> results(static_cast<std::size_t>(p), 0.0);
  run_world(p, [&](Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      std::vector<double> v = {static_cast<double>(round)};
      comm.allreduce_sum(v);
      if (v[0] != round * p) {
        results[static_cast<std::size_t>(comm.rank())] = -1.0;
        return;
      }
    }
    results[static_cast<std::size_t>(comm.rank())] = 1.0;
  });
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST_P(WorldSizes, GenericReduceWithCustomCombine) {
  const int p = GetParam();
  std::vector<std::uint8_t> result;
  run_world(p, [&](Communicator& comm) {
    std::vector<std::uint8_t> mine = {
        static_cast<std::uint8_t>(1u << (comm.rank() % 8))};
    auto combined = comm.reduce(
        0, std::move(mine),
        [](std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
          a[0] |= b[0];
          return a;
        });
    if (comm.rank() == 0) result = std::move(combined);
  });
  std::uint8_t expected = 0;
  for (int r = 0; r < p; ++r) expected |= static_cast<std::uint8_t>(1u << (r % 8));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], expected);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, WorldSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(Mpsim, StatsCountTraffic) {
  const auto stats = run_world(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, std::vector<std::uint8_t>(100));
    } else {
      comm.recv(0, 3);
    }
  });
  EXPECT_EQ(stats[0].messages_sent, 1u);
  EXPECT_EQ(stats[0].bytes_sent, 100u);
  EXPECT_EQ(stats[1].messages_received, 1u);
  EXPECT_EQ(stats[1].bytes_received, 100u);
}

TEST(Mpsim, OutOfOrderTagsMatch) {
  run_world(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_u64(1, 10, 111);
      comm.send_u64(1, 20, 222);
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(comm.recv_u64(0, 20), 222u);
      EXPECT_EQ(comm.recv_u64(0, 10), 111u);
    }
  });
}

TEST(Mpsim, ExceptionsPropagate) {
  EXPECT_THROW(run_world(2,
                         [](Communicator& comm) {
                           comm.barrier();
                           if (comm.rank() == 1) {
                             throw ConfigError("rank 1 exploded");
                           }
                         }),
               ConfigError);
}

TEST(Mpsim, RankFailureWakesPeersBlockedInCollectives) {
  // The deadlock hazard this layer exists to fix: rank 2 dies while every
  // other rank is blocked in a barrier (and rank 0 additionally in a recv).
  // All peers must wake, and the *original* exception must win the rethrow
  // over the secondary RankFailedErrors the wakeups produce.
  try {
    run_world(4, [](Communicator& comm) {
      if (comm.rank() == 2) {
        throw ConfigError("rank 2 exploded");
      }
      if (comm.rank() == 0) comm.recv(2, 17);  // never sent
      comm.barrier();
      FAIL() << "rank " << comm.rank() << " survived a dead world";
    });
    FAIL() << "run_world did not rethrow";
  } catch (const RankFailedError&) {
    FAIL() << "secondary peer-death error shadowed the root cause";
  } catch (const ConfigError& e) {
    EXPECT_STREQ(e.what(), "rank 2 exploded");
  }
}

TEST(Mpsim, RejectsInvalidArgs) {
  EXPECT_THROW(run_world(0, [](Communicator&) {}), ConfigError);
  run_world(1, [](Communicator& comm) {
    EXPECT_THROW(comm.send(5, 0, {}), ConfigError);
    EXPECT_THROW(comm.send(0, 1 << 21, {}), ConfigError);
  });
}

// ---------------------------------------------------------------------------
// Cost model

TEST(CostModel, RankTimeComposition) {
  RankCost cost;
  cost.compute_seconds = 2.0;
  cost.comm.messages_sent = 100;
  cost.comm.bytes_sent = 1'000'000;
  CostModelParams params;
  params.alpha = 1e-3;
  params.beta = 1e6;
  // 2.0 + 100 * 1e-3 + 1e6 / 1e6 = 3.1
  EXPECT_NEAR(rank_time(cost, params), 3.1, 1e-12);
}

TEST(CostModel, MakespanIsSlowestRank) {
  std::vector<RankCost> costs(3);
  costs[0].compute_seconds = 1.0;
  costs[1].compute_seconds = 5.0;
  costs[2].compute_seconds = 2.0;
  EXPECT_DOUBLE_EQ(simulated_makespan(costs, CostModelParams{}), 5.0);
}

TEST(CostModel, CommDominatesWithSlowNetwork) {
  RankCost cost;
  cost.compute_seconds = 1.0;
  cost.comm.bytes_sent = 125'000'000;  // 1 second at default beta
  CostModelParams fast;
  CostModelParams slow;
  slow.beta = 12'500'000;  // 10x slower network
  EXPECT_GT(rank_time(cost, slow), rank_time(cost, fast) + 8.0);
}

TEST(CostModel, RejectsBadParams) {
  CostModelParams params;
  params.beta = 0.0;
  EXPECT_THROW(rank_time(RankCost{}, params), ConfigError);
}

}  // namespace
}  // namespace gnumap

// Unit tests for gnumap/genome: alphabet, Genome container, partitioning.
#include <gtest/gtest.h>

#include "gnumap/genome/genome.hpp"
#include "gnumap/genome/partition.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

TEST(Sequence, EncodeDecodeRoundTrip) {
  const std::string text = "ACGTNacgtnXZ-";
  const auto codes = encode_sequence(text);
  ASSERT_EQ(codes.size(), text.size());
  EXPECT_EQ(decode_sequence(codes), "ACGTNACGTNNNN");
}

TEST(Sequence, EncodeValues) {
  EXPECT_EQ(encode_base('A'), 0);
  EXPECT_EQ(encode_base('c'), 1);
  EXPECT_EQ(encode_base('G'), 2);
  EXPECT_EQ(encode_base('t'), 3);
  EXPECT_EQ(encode_base('N'), kBaseN);
  EXPECT_EQ(encode_base('?'), kBaseN);
}

TEST(Sequence, Complement) {
  EXPECT_EQ(complement(encode_base('A')), encode_base('T'));
  EXPECT_EQ(complement(encode_base('C')), encode_base('G'));
  EXPECT_EQ(complement(encode_base('G')), encode_base('C'));
  EXPECT_EQ(complement(encode_base('T')), encode_base('A'));
  EXPECT_EQ(complement(kBaseN), kBaseN);
}

TEST(Sequence, ReverseComplement) {
  const auto codes = encode_sequence("AACGT");
  EXPECT_EQ(decode_sequence(reverse_complement(codes)), "ACGTT");
  // Involution.
  EXPECT_EQ(reverse_complement(reverse_complement(codes)), codes);
}

TEST(Sequence, TransitionClassification) {
  // A<->G and C<->T are transitions.
  EXPECT_TRUE(is_transition(0, 2));
  EXPECT_TRUE(is_transition(2, 0));
  EXPECT_TRUE(is_transition(1, 3));
  EXPECT_FALSE(is_transition(0, 1));
  EXPECT_FALSE(is_transition(0, 0));
  EXPECT_FALSE(is_transition(0, kBaseN));
}

TEST(Genome, SingleContigBasics) {
  Genome g;
  const auto id = g.add_contig("chr1", "ACGTACGT");
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(g.num_contigs(), 1u);
  EXPECT_EQ(g.num_bases(), 8u);
  EXPECT_EQ(g.contig_size(0), 8u);
  EXPECT_EQ(g.padded_size(), 8u + Genome::kContigPad);
  EXPECT_EQ(g.at(0), encode_base('A'));
  EXPECT_EQ(g.at(3), encode_base('T'));
  EXPECT_EQ(g.at(8), kBaseN);  // padding
}

TEST(Genome, MultiContigCoordinates) {
  Genome g;
  g.add_contig("chr1", "AAAA");
  g.add_contig("chr2", "CCCCCC");
  const GenomePos chr2_start = g.contig_start(1);
  EXPECT_EQ(chr2_start, 4u + Genome::kContigPad);
  EXPECT_EQ(g.at(chr2_start), encode_base('C'));

  const auto coord = g.resolve(chr2_start + 3);
  EXPECT_EQ(coord.contig_id, 1u);
  EXPECT_EQ(coord.offset, 3u);
  EXPECT_EQ(g.global_pos(1, 3), chr2_start + 3);
}

TEST(Genome, ResolveRoundTripsEverywhere) {
  Genome g;
  g.add_contig("a", "ACG");
  g.add_contig("b", "TTTTT");
  g.add_contig("c", "GG");
  for (std::uint32_t c = 0; c < g.num_contigs(); ++c) {
    for (std::uint64_t off = 0; off < g.contig_size(c); ++off) {
      const auto pos = g.global_pos(c, off);
      EXPECT_TRUE(g.in_contig(pos));
      const auto coord = g.resolve(pos);
      EXPECT_EQ(coord.contig_id, c);
      EXPECT_EQ(coord.offset, off);
    }
  }
}

TEST(Genome, PaddingIsNotInContig) {
  Genome g;
  g.add_contig("a", "ACG");
  EXPECT_FALSE(g.in_contig(3));
  EXPECT_THROW(g.resolve(3), ConfigError);
}

TEST(Genome, RejectsDuplicateNames) {
  Genome g;
  g.add_contig("chr1", "AC");
  EXPECT_THROW(g.add_contig("chr1", "GT"), ConfigError);
}

TEST(Genome, RejectsEmptyName) {
  Genome g;
  EXPECT_THROW(g.add_contig("", "ACGT"), ConfigError);
}

TEST(Genome, GlobalPosBoundsChecked) {
  Genome g;
  g.add_contig("chr1", "ACGT");
  EXPECT_THROW(g.global_pos(1, 0), ConfigError);
  EXPECT_THROW(g.global_pos(0, 4), ConfigError);
}

TEST(Genome, WindowClamps) {
  Genome g;
  g.add_contig("chr1", "ACGT");
  const auto full = g.window(0, 1000);
  EXPECT_EQ(full.size(), g.padded_size());
  const auto empty = g.window(1000, 2000);
  EXPECT_TRUE(empty.empty());
  const auto mid = g.window(1, 3);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], encode_base('C'));
}

class PartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionTest, CoversExactlyOnceWithMargins) {
  Genome g;
  std::string seq(10000, 'A');
  g.add_contig("chr1", seq);
  const int ranks = GetParam();
  const auto segments = partition_genome(g, ranks, 100);
  ASSERT_EQ(segments.size(), static_cast<std::size_t>(ranks));

  // Core ranges tile [0, padded_size) exactly.
  GenomePos cursor = 0;
  for (const auto& seg : segments) {
    EXPECT_EQ(seg.core_begin, cursor);
    EXPECT_GE(seg.core_end, seg.core_begin);
    // Stored range includes the core plus margins, clamped.
    EXPECT_LE(seg.store_begin, seg.core_begin);
    EXPECT_GE(seg.store_end, seg.core_end);
    EXPECT_LE(seg.store_end, g.padded_size());
    cursor = seg.core_end;
  }
  EXPECT_EQ(cursor, g.padded_size());

  // Near-equal sizes (differ by at most 1).
  std::uint64_t min_size = ~0ull, max_size = 0;
  for (const auto& seg : segments) {
    const auto size = seg.core_end - seg.core_begin;
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PartitionTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 30));

TEST(Partition, RejectsZeroRanks) {
  Genome g;
  g.add_contig("chr1", "ACGT");
  EXPECT_THROW(partition_genome(g, 0, 10), ConfigError);
}

TEST(Partition, MarginLargerThanSegment) {
  Genome g;
  g.add_contig("chr1", "ACGTACGTAC");
  const auto segments = partition_genome(g, 4, 1000);
  for (const auto& seg : segments) {
    EXPECT_EQ(seg.store_begin, 0u);
    EXPECT_EQ(seg.store_end, g.padded_size());
  }
}

}  // namespace
}  // namespace gnumap

// Chaos harness for the serving stack: seeded wire fault plans driven
// through real sockets against a live server.  Covers the fault-shim
// grammar and injector mechanics, CRC frame integrity, client
// retry/backoff accounting, deadline propagation, watchdog eviction,
// overload shedding, and a concurrent seeded sweep asserting the
// byte-identity contract survives disconnects, corruption, and stalls.
//
// Every plan is seeded or literal, so a failure replays exactly; every
// test must terminate within the suite TIMEOUT even when a fault would
// naively wedge a thread.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnumap/core/pipeline.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/serve/client.hpp"
#include "gnumap/serve/fault_shim.hpp"
#include "gnumap/serve/server.hpp"
#include "gnumap/serve/socket.hpp"
#include "gnumap/serve/wire.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

using serve::ClientOptions;
using serve::FrameType;
using serve::MappingClient;
using serve::MappingServer;
using serve::RandomWireFaultOptions;
using serve::ServeOptions;
using serve::Socket;
using serve::WireError;
using serve::WireErrorCode;
using serve::WireFaultInjector;
using serve::WireFaultPlan;

// ---------------------------------------------------------------------------
// Shared workload (expensive to simulate and to map offline: built once)

struct Workload {
  Genome ref;
  std::vector<Read> reads;
  std::string fastq;
  std::string tsv;  ///< offline pipeline output for byte-identity checks
  std::string sam;
};

PipelineConfig chaos_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  config.threads = 2;
  config.stream_batch = 32;
  config.queue_depth = 2;
  config.min_parallel_reads = 0;
  return config;
}

Workload build_workload() {
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  Workload w;
  w.ref = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 12;
  const SnpCatalog catalog = generate_catalog(w.ref, catalog_options);
  const Genome individual = apply_catalog(w.ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 6.0;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  std::ostringstream fastq;
  write_fastq(fastq, w.reads);
  w.fastq = fastq.str();

  const PipelineConfig config = chaos_config();
  VectorReadStream stream(w.reads, config.stream_batch);
  std::ostringstream sam;
  const PipelineResult result =
      run_pipeline_stream(w.ref, stream, config, nullptr, &sam);
  std::ostringstream tsv;
  write_snps_tsv(tsv, result.calls);
  w.tsv = tsv.str();
  w.sam = sam.str();
  return w;
}

const Workload& shared_workload() {
  static const Workload w = build_workload();
  return w;
}

ServeOptions chaos_server_options() {
  ServeOptions options;
  options.port = 0;
  options.io_timeout_ms = 10'000;
  options.request_timeout_ms = 60'000;
  return options;
}

/// Fast deterministic backoff so chaos runs stay inside the suite budget.
void pin_fast_backoff(ClientOptions& options, std::uint64_t seed) {
  options.backoff_base_ms = 10;
  options.backoff_max_ms = 100;
  options.backoff_seed = seed;
}

Socket raw_hello(std::uint16_t port) {
  Socket sock = serve::connect_tcp("127.0.0.1", port, 5'000);
  serve::write_frame(sock, FrameType::kHello,
                     serve::encode_hello(serve::kProtocolVersion,
                                         "chaos-test"),
                     5'000);
  auto reply = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
  if (!reply.has_value() || reply->type != FrameType::kHelloOk) {
    throw WireError(WireErrorCode::kProtocol, "handshake failed in test");
  }
  return sock;
}

/// Reads frames until an ERROR arrives and returns its decoded code.
WireErrorCode expect_error_frame(Socket& sock, int timeout_ms = 10'000) {
  for (;;) {
    auto frame =
        serve::read_frame(sock, serve::kDefaultMaxFrameBytes, timeout_ms);
    if (!frame.has_value()) {
      ADD_FAILURE() << "connection closed without an ERROR frame";
      return WireErrorCode::kInternal;
    }
    if (frame->type == FrameType::kError) {
      return serve::decode_error(frame->payload).first;
    }
  }
}

// ---------------------------------------------------------------------------
// CRC32

TEST(ChaosCrc, MatchesKnownVectorAndChains) {
  // The canonical IEEE 802.3 check value.
  const std::string check = "123456789";
  EXPECT_EQ(serve::crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(serve::crc32(nullptr, 0), 0u);

  // Incremental chaining equals the one-shot digest.
  const std::string a = "1234", b = "56789";
  const std::uint32_t partial = serve::crc32(a.data(), a.size());
  EXPECT_EQ(serve::crc32(b.data(), b.size(), partial),
            serve::crc32(check.data(), check.size()));

  // A single flipped bit changes the digest.
  std::string damaged = check;
  damaged[4] ^= 0x01;
  EXPECT_NE(serve::crc32(damaged.data(), damaged.size()),
            serve::crc32(check.data(), check.size()));
}

// ---------------------------------------------------------------------------
// Fault plan grammar

TEST(ChaosPlan, ParseRoundTripsThroughDescribe) {
  const std::string spec =
      "disconnect@4096,truncate@10:3,corrupt@7:0xf,stall@0:250,"
      "short@100:16:5,accept-delay:100";
  const WireFaultPlan plan = WireFaultPlan::parse(spec);
  EXPECT_EQ(plan.events().size(), 6u);
  EXPECT_EQ(plan.describe(), spec);
  // describe() itself reparses to the identical plan.
  EXPECT_EQ(WireFaultPlan::parse(plan.describe()).describe(), spec);
  EXPECT_EQ(WireFaultPlan().describe(), "none");
  EXPECT_TRUE(WireFaultPlan::parse("").empty());
}

TEST(ChaosPlan, MalformedSpecsThrowConfigError) {
  const char* bad[] = {
      "disconnect",        // missing @offset
      "disconnect@",       // empty offset
      "truncate@1:0",      // zero drop
      "corrupt@5:0",       // zero mask
      "corrupt@5:256",     // mask out of range
      "stall@1",           // missing duration
      "accept-delay@5:1",  // accept-delay takes no offset
      "short@1",           // missing chunk
      "bogus@3",           // unknown kind
      "disconnect@12junk", // trailing junk
  };
  for (const char* spec : bad) {
    EXPECT_THROW(WireFaultPlan::parse(spec), ConfigError) << spec;
  }
}

TEST(ChaosPlan, SeededRandomPlansAreDeterministic) {
  const RandomWireFaultOptions options;
  EXPECT_EQ(WireFaultPlan::random(42, options).describe(),
            WireFaultPlan::random(42, options).describe());
  EXPECT_NE(WireFaultPlan::random(42, options).describe(),
            WireFaultPlan::random(43, options).describe());
  // The spec grammar reaches the same generator.
  EXPECT_EQ(WireFaultPlan::parse("random:42").describe(),
            WireFaultPlan::random(42, options).describe());
}

// ---------------------------------------------------------------------------
// Injector mechanics (no sockets)

TEST(ChaosInjector, SlicesSendsAtEventBoundaries) {
  WireFaultPlan plan;
  plan.corrupt_at(4, 0x0F).disconnect_at(10);
  WireFaultInjector injector(plan);

  // Bytes 0..3 pass untouched: the slice stops at the corrupt boundary.
  auto action = injector.next_tx(20);
  EXPECT_FALSE(action.close);
  EXPECT_EQ(action.drop, 0u);
  EXPECT_EQ(action.allow, 4u);
  injector.commit_tx(4);

  // Byte 4 goes out XOR-damaged, alone.
  action = injector.next_tx(16);
  EXPECT_TRUE(action.corrupt_first);
  EXPECT_EQ(action.xor_mask, 0x0F);
  EXPECT_EQ(action.allow, 1u);
  injector.commit_tx(1);
  EXPECT_EQ(injector.fired_count(), 1u);

  // Bytes 5..9 pass; the next boundary is the disconnect at 10.
  action = injector.next_tx(15);
  EXPECT_FALSE(action.corrupt_first);
  EXPECT_EQ(action.allow, 5u);
  injector.commit_tx(5);

  action = injector.next_tx(10);
  EXPECT_TRUE(action.close);
  EXPECT_EQ(injector.fired_count(), 2u);
  EXPECT_EQ(injector.tx_offset(), 10u);
}

TEST(ChaosInjector, TruncateSwallowsExactlyTheConfiguredBytes) {
  WireFaultPlan plan;
  plan.truncate_at(2, 3);
  WireFaultInjector injector(plan);

  auto action = injector.next_tx(10);
  EXPECT_EQ(action.allow, 2u);
  injector.commit_tx(2);

  // Three bytes vanish (counted as sent, never delivered)...
  action = injector.next_tx(8);
  EXPECT_EQ(action.drop, 3u);
  injector.commit_tx(3);

  // ...and everything after flows again.
  action = injector.next_tx(5);
  EXPECT_EQ(action.drop, 0u);
  EXPECT_EQ(action.allow, 5u);
  injector.commit_tx(5);
  EXPECT_EQ(injector.tx_offset(), 10u);
}

// ---------------------------------------------------------------------------
// Frame integrity over a live connection

TEST(ChaosServe, CorruptFrameDrawsTypedErrorAndCounter) {
  const Workload& w = shared_workload();
  MappingServer server(w.ref, chaos_config(), chaos_server_options());
  server.start();

  {
    Socket sock = raw_hello(server.port());
    // Hand-build a STATS frame with a correct CRC, then damage the payload
    // after the checksum was computed — exactly what a flipped bit in
    // flight looks like.
    const std::string payload = "damaged-in-flight";
    std::string frame;
    serve::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.push_back(static_cast<char>(FrameType::kStats));
    std::uint32_t crc = serve::crc32(frame.data(), frame.size());
    crc = serve::crc32(payload.data(), payload.size(), crc);
    serve::put_u32(frame, crc);
    frame += payload;
    frame[serve::kFrameHeaderBytes + 3] ^= 0x40;
    sock.send_all(frame.data(), frame.size(), 5'000);
    EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kCorrupt);
  }

  // The damage is visible in the server's own counters.
  ClientOptions probe_options;
  probe_options.port = server.port();
  MappingClient probe(probe_options);
  const auto kv = serve::parse_kv_lines(probe.stats());
  EXPECT_GE(std::stoull(kv.at("corrupt_frames_total")), 1u);

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Backoff and overload shedding

TEST(ChaosServe, ConnectBackoffIsBoundedAndTyped) {
  const Workload& w = shared_workload();
  ServeOptions options = chaos_server_options();
  options.max_connections = 1;
  options.busy_retry_ms = 10;
  MappingServer server(w.ref, chaos_config(), options);
  server.start();

  // One idle client pins the only connection slot.
  ClientOptions holder_options;
  holder_options.port = server.port();
  MappingClient holder(holder_options);

  {
    // Bounded retries: a few BUSY refusals under backoff, then a typed
    // give-up that carries the server's hint.
    ClientOptions options2;
    options2.port = server.port();
    options2.connect_retries = 2;
    pin_fast_backoff(options2, 7);
    try {
      MappingClient refused(options2);
      FAIL() << "connect succeeded past the connection limit";
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), WireErrorCode::kShuttingDown) << e.what();
      EXPECT_NE(std::string(e.what()).find("connection limit"),
                std::string::npos)
          << e.what();
    }
  }
  {
    // A cumulative backoff budget smaller than one sleep trips before any
    // retry: kTimeout, not an unbounded stall.
    ClientOptions options3;
    options3.port = server.port();
    options3.connect_retries = 5;
    options3.backoff_total_ms = 1;
    pin_fast_backoff(options3, 8);
    try {
      MappingClient refused(options3);
      FAIL() << "connect succeeded past the connection limit";
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), WireErrorCode::kTimeout) << e.what();
      EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos)
          << e.what();
    }
  }

  holder.close();
  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Deadline propagation and eviction

TEST(ChaosServe, ClientDeadlinePropagatesAndAbandonsWork) {
  const Workload& w = shared_workload();
  MappingServer server(w.ref, chaos_config(), chaos_server_options());
  server.start();

  Socket sock = raw_hello(server.port());
  // MAP_BEGIN carries a 300 ms client deadline; the upload then stalls
  // forever.  The server must abandon the request on OUR deadline, not its
  // own 60 s one.
  serve::write_frame(sock, FrameType::kMapBegin,
                     serve::encode_map_begin(0, 300), 5'000);
  auto go = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(go.has_value());
  ASSERT_EQ(go->type, FrameType::kMapGo);
  serve::write_frame(sock, FrameType::kReadsChunk,
                     w.fastq.substr(0, w.fastq.size() / 4), 5'000);
  EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kTimeout);

  ClientOptions probe_options;
  probe_options.port = server.port();
  MappingClient probe(probe_options);
  const auto kv = serve::parse_kv_lines(probe.stats());
  EXPECT_GE(std::stoull(kv.at("deadline_abandoned_total")), 1u);

  server.request_stop();
  server.wait();
}

TEST(ChaosServe, WatchdogEvictsConnectionsPastLifetimeBudget) {
  const Workload& w = shared_workload();
  ServeOptions options = chaos_server_options();
  options.max_connection_seconds = 0.3;
  MappingServer server(w.ref, chaos_config(), options);
  server.start();

  // An idle connection outlives its budget: the watchdog cancels it and
  // the handler answers with a typed eviction before closing.
  Socket sock = raw_hello(server.port());
  EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kEvicted);

  ClientOptions probe_options;
  probe_options.port = server.port();
  MappingClient probe(probe_options);
  const auto kv = serve::parse_kv_lines(probe.stats());
  EXPECT_GE(std::stoull(kv.at("evictions_total")), 1u);

  server.request_stop();
  server.wait();
}

TEST(ChaosServe, ByteBudgetEvictsGreedyUploads) {
  const Workload& w = shared_workload();
  ServeOptions options = chaos_server_options();
  options.max_connection_bytes = 4096;  // the workload is far larger
  MappingServer server(w.ref, chaos_config(), options);
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv;
  try {
    client.map(fastq, tsv);
    FAIL() << "upload exceeded the byte budget without an eviction";
  } catch (const WireError& e) {
    // Typed verdict, not a transport error — the client must NOT retry
    // (the replay would just be evicted again).
    EXPECT_EQ(e.code(), WireErrorCode::kEvicted) << e.what();
  }

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Health probes

TEST(ChaosServe, HealthProbeWorksEvenBeforeHandshake) {
  const Workload& w = shared_workload();
  MappingServer server(w.ref, chaos_config(), chaos_server_options());
  server.start();

  {
    // No HELLO: fleet probes must not need a handshake.
    Socket sock = serve::connect_tcp("127.0.0.1", server.port(), 5'000);
    serve::write_frame(sock, FrameType::kHealth, "", 5'000);
    auto reply = serve::read_frame(sock, serve::kDefaultMaxFrameBytes,
                                   5'000);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::kHealthOk);
    const auto kv = serve::parse_kv_lines(reply->payload);
    EXPECT_EQ(kv.at("ready"), "1");
    EXPECT_EQ(kv.at("draining"), "0");
  }

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  const auto kv = serve::parse_kv_lines(client.health());
  EXPECT_EQ(kv.at("ready"), "1");
  EXPECT_GT(std::stoull(kv.at("request_window_reads")), 0u);

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Client-side retry accounting under an injected disconnect

TEST(ChaosServe, ReconnectRetriesIdempotentRequestAndAccountsForIt) {
  const Workload& w = shared_workload();
  MappingServer server(w.ref, chaos_config(), chaos_server_options());
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  client_options.transport_retries = 2;
  client_options.connect_retries = 2;
  pin_fast_backoff(client_options, 21);
  // The client cuts its own connection 5000 bytes in — mid-frame, inside
  // the first READS_CHUNK.  The injector survives the reconnect, so the
  // fault fires exactly once and the retry runs clean.
  client_options.fault_plan = WireFaultPlan::parse("disconnect@5000");

  MappingClient client(client_options);
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv, sam;
  const auto outcome = client.map(fastq, tsv, &sam);

  EXPECT_FALSE(outcome.busy);
  EXPECT_EQ(outcome.reconnects, 1);
  EXPECT_GE(outcome.attempts, 2);
  EXPECT_GT(outcome.backoff_ms, 0u);
  EXPECT_EQ(tsv.str(), w.tsv);
  EXPECT_EQ(sam.str(), w.sam);

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Server-side fault plan (the gnumapd --fault-plan path)

TEST(ChaosServe, ServerSideFaultPlanCutsEveryConnection) {
  const Workload& w = shared_workload();
  ServeOptions options = chaos_server_options();
  // Every accepted connection gets a fresh injector: the server's 80th
  // transmitted byte (inside HELLO_OK + MAP_GO territory) never arrives,
  // on any connection, so no retry can succeed.
  options.fault_plan = WireFaultPlan::parse("disconnect@80");
  MappingServer server(w.ref, chaos_config(), options);
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  client_options.transport_retries = 2;
  client_options.connect_retries = 2;
  pin_fast_backoff(client_options, 31);
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv;
  try {
    MappingClient client(client_options);
    client.map(fastq, tsv);
    FAIL() << "map succeeded through a server that cuts every connection";
  } catch (const WireError& e) {
    // Typed transport failure after bounded retries — never a hang, never
    // an unhandled crash.
    EXPECT_EQ(e.code(), WireErrorCode::kClosed) << e.what();
  }

  // The server itself is healthy: it survived its own chaos and drains.
  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Drain with an in-flight upload

TEST(ChaosServe, DrainMidUploadFinishesOrFailsTyped) {
  const Workload& w = shared_workload();
  MappingServer server(w.ref, chaos_config(), chaos_server_options());
  server.start();

  std::string tsv_result;
  std::string error_text;
  std::atomic<bool> typed_error{false}, success{false};
  std::thread mapper([&] {
    try {
      ClientOptions client_options;
      client_options.port = server.port();
      MappingClient client(client_options);
      std::istringstream fastq(w.fastq);
      std::ostringstream tsv;
      const auto outcome = client.map(fastq, tsv);
      if (!outcome.busy) {
        tsv_result = tsv.str();
        success = true;
      }
    } catch (const WireError& e) {
      error_text = e.what();
      typed_error = true;
    }
  });

  // Begin the drain while the upload is (very likely) still in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.request_stop();
  mapper.join();
  server.wait();  // must return: drain never strands a handler

  EXPECT_TRUE(success.load() || typed_error.load())
      << "client saw neither a result nor a typed error";
  if (success.load()) {
    // An admitted request runs to completion even during a drain, and its
    // bytes are still identical to the offline pipeline's.
    EXPECT_EQ(tsv_result, w.tsv);
  }
}

// ---------------------------------------------------------------------------
// Seeded concurrent chaos sweep

TEST(ChaosServe, SeededFaultSweepPreservesByteIdentity) {
  const Workload& w = shared_workload();
  MappingServer server(w.ref, chaos_config(), chaos_server_options());
  server.start();

  // Three concurrent clients, each battering the server with its own
  // seeded plan — a mid-frame disconnect, a corrupted byte, and a stall,
  // all inside the first upload chunk — while retrying through the
  // damage.  Truncates are excluded: a swallowed hole can only surface as
  // a recv timeout, which is minutes of dead air, not a robustness signal.
  constexpr int kClients = 3;
  RandomWireFaultOptions fault_options;
  fault_options.disconnects = 1;
  fault_options.corruptions = 1;
  fault_options.stalls = 1;
  fault_options.truncates = 0;
  fault_options.max_stall_seconds = 0.1;

  std::vector<std::string> tsv_results(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<int> reconnects(kClients, 0);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        ClientOptions client_options;
        client_options.port = server.port();
        client_options.busy_retries = 100;
        client_options.connect_retries = 4;
        client_options.transport_retries = 4;
        pin_fast_backoff(client_options, 77 + i);
        client_options.fault_plan =
            WireFaultPlan::random(1000 + i, fault_options);
        MappingClient client(client_options);
        std::istringstream fastq(w.fastq);
        std::ostringstream tsv;
        const auto outcome = client.map(fastq, tsv);
        if (outcome.busy) {
          errors[i] = "busy";
          return;
        }
        tsv_results[i] = tsv.str();
        reconnects[i] = outcome.reconnects;
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();

  int total_reconnects = 0;
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(errors[i], "") << "client " << i << " plan: "
                             << WireFaultPlan::random(1000 + i,
                                                      fault_options)
                                    .describe();
    EXPECT_EQ(tsv_results[i], w.tsv) << "client " << i;
    total_reconnects += reconnects[i];
  }
  // Every plan contains one guaranteed disconnect inside the upload, so
  // the sweep must have exercised the reconnect path.
  EXPECT_GE(total_reconnects, 1);

  // The server took the whole barrage and still answers cleanly.
  ClientOptions probe_options;
  probe_options.port = server.port();
  MappingClient probe(probe_options);
  const auto kv = serve::parse_kv_lines(probe.stats());
  EXPECT_GE(std::stoull(kv.at("requests_total")),
            static_cast<std::uint64_t>(kClients));
  EXPECT_GE(std::stoull(kv.at("corrupt_frames_total")), 1u);

  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace gnumap

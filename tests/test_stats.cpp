// Tests for gnumap/stats: chi-square, LRT, FDR.
#include <gtest/gtest.h>

#include <cmath>

#include "gnumap/stats/chi2.hpp"
#include "gnumap/stats/fdr.hpp"
#include "gnumap/stats/lrt.hpp"
#include "gnumap/util/error.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {
namespace {

// ---------------------------------------------------------------------------
// Chi-square

TEST(Chi2, KnownQuantiles) {
  // Textbook chi^2_1 critical values.
  EXPECT_NEAR(chi2_quantile(0.95, 1.0), 3.841, 5e-3);
  EXPECT_NEAR(chi2_quantile(0.99, 1.0), 6.635, 5e-3);
  EXPECT_NEAR(chi2_quantile(0.999, 1.0), 10.828, 5e-3);
  EXPECT_NEAR(chi2_quantile(0.95, 2.0), 5.991, 5e-3);
  EXPECT_NEAR(chi2_quantile(0.95, 5.0), 11.070, 5e-3);
}

TEST(Chi2, KnownCdfValues) {
  // chi^2_1 CDF(x) = erf(sqrt(x/2)).
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0}) {
    EXPECT_NEAR(chi2_cdf(x, 1.0), std::erf(std::sqrt(x / 2.0)), 1e-10) << x;
  }
  // chi^2_2 CDF(x) = 1 - exp(-x/2).
  for (const double x : {0.1, 1.0, 4.0, 20.0}) {
    EXPECT_NEAR(chi2_cdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-12) << x;
  }
}

TEST(Chi2, SurvivalComplementsCdf) {
  for (const double x : {0.01, 0.5, 3.0, 12.0, 40.0}) {
    for (const double dof : {1.0, 2.0, 4.0, 10.0}) {
      EXPECT_NEAR(chi2_cdf(x, dof) + chi2_sf(x, dof), 1.0, 1e-12);
    }
  }
}

TEST(Chi2, SurvivalAccurateInDeepTail) {
  // Deep-tail values would cancel to 0 via 1-CDF; sf computes directly.
  const double sf = chi2_sf(100.0, 1.0);
  EXPECT_GT(sf, 0.0);
  EXPECT_LT(sf, 1e-20);
}

TEST(Chi2, QuantileCdfRoundTrip) {
  for (const double p : {0.01, 0.25, 0.5, 0.9, 0.99, 0.9999}) {
    for (const double dof : {1.0, 3.0, 7.0}) {
      EXPECT_NEAR(chi2_cdf(chi2_quantile(p, dof), dof), p, 1e-9)
          << "p=" << p << " dof=" << dof;
    }
  }
}

TEST(Chi2, EdgeCases) {
  EXPECT_DOUBLE_EQ(chi2_cdf(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(chi2_cdf(-1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(chi2_sf(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(chi2_quantile(0.0, 1.0), 0.0);
  EXPECT_THROW(chi2_cdf(1.0, 0.0), ConfigError);
  EXPECT_THROW(chi2_quantile(1.0, 1.0), ConfigError);
}

TEST(GammaP, MatchesClosedForms) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  EXPECT_NEAR(gamma_q(1.0, 2.0), std::exp(-2.0), 1e-12);
}

// ---------------------------------------------------------------------------
// LRT

TEST(LrtMonoploid, UniformIsNull) {
  const LrtResult r = lrt_monoploid({4, 4, 4, 4, 4});
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_NEAR(r.p_adjusted, 1.0, 1e-9);
}

TEST(LrtMonoploid, PureBaseIsHighlySignificant) {
  const LrtResult r = lrt_monoploid({20, 0, 0, 0, 0});
  // lambda = 0.2^20 / 1 => stat = -2 * 20 * log(0.2).
  EXPECT_NEAR(r.statistic, -40.0 * std::log(0.2), 1e-9);
  EXPECT_LT(r.p_adjusted, 1e-10);
  EXPECT_EQ(r.allele1, 0);
  EXPECT_EQ(r.allele2, 0);
}

TEST(LrtMonoploid, PaperExampleVector) {
  // The paper's z = (14, 1, 3, 2, 0) with n = 20.
  const LrtResult r = lrt_monoploid({14, 1, 3, 2, 0});
  const double n = 20, z5 = 14;
  const double expected =
      2.0 * (z5 * std::log(z5 / n) +
             (n - z5) * std::log((n - z5) / (4 * n)) - n * std::log(0.2));
  EXPECT_NEAR(r.statistic, expected, 1e-9);
  EXPECT_EQ(r.allele1, 0);  // A has the max
  EXPECT_LT(r.p_adjusted, 0.01);
}

TEST(LrtMonoploid, MonotoneInDominance) {
  // Fixing n, the statistic grows as the top proportion grows.
  double last = -1.0;
  for (double z5 = 5.0; z5 <= 20.0; z5 += 1.0) {
    const double rest = (20.0 - z5) / 4.0;
    const LrtResult r = lrt_monoploid({z5, rest, rest, rest, rest});
    EXPECT_GE(r.statistic, last - 1e-12);
    last = r.statistic;
  }
}

TEST(LrtMonoploid, ScalesWithCoverage) {
  // Same composition, more coverage => more significance.
  const LrtResult lo = lrt_monoploid({8, 1, 1, 0, 0});
  const LrtResult hi = lrt_monoploid({80, 10, 10, 0, 0});
  EXPECT_GT(hi.statistic, lo.statistic);
  EXPECT_LT(hi.p_adjusted, lo.p_adjusted);
}

TEST(LrtMonoploid, EmptyCountsAreNull) {
  const LrtResult r = lrt_monoploid({0, 0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_adjusted, 1.0);
  EXPECT_DOUBLE_EQ(r.n, 0.0);
}

TEST(LrtMonoploid, GapCanWin) {
  const LrtResult r = lrt_monoploid({1, 0, 0, 0, 19});
  EXPECT_EQ(r.allele1, 4);
  EXPECT_LT(r.p_adjusted, 1e-6);
}

TEST(LrtDiploid, HeterozygousBeatsHomozygousOn5050) {
  const LrtResult r = lrt_diploid({10, 10, 0, 0, 0});
  EXPECT_TRUE(r.heterozygous);
  EXPECT_NE(r.allele1, r.allele2);
  // Alleles are the top two tracks (A and C).
  EXPECT_TRUE((r.allele1 == 0 && r.allele2 == 1) ||
              (r.allele1 == 1 && r.allele2 == 0));
  EXPECT_LT(r.p_adjusted, 1e-6);
}

TEST(LrtDiploid, HomozygousOnPureBase) {
  const LrtResult r = lrt_diploid({20, 1, 0, 0, 0});
  EXPECT_FALSE(r.heterozygous);
  EXPECT_EQ(r.allele1, r.allele2);
  EXPECT_EQ(r.allele1, 0);
}

TEST(LrtDiploid, AtLeastAsLargeAsMonoploid) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    TrackCounts z;
    for (auto& v : z) v = rng.next_double() * 20.0;
    const LrtResult mono = lrt_monoploid(z);
    const LrtResult dip = lrt_diploid(z);
    // The diploid alternative is a superset: max over more models.
    EXPECT_GE(dip.statistic, mono.statistic - 1e-9);
  }
}

TEST(LrtDiploid, HetRequiresBothAllelesSubstantial) {
  const LrtResult r = lrt_diploid({18, 2, 0, 0, 0});
  EXPECT_FALSE(r.heterozygous);
}

TEST(Lrt, ThresholdMatchesQuantile) {
  for (const double alpha : {0.05, 0.01, 1e-4}) {
    EXPECT_NEAR(lrt_threshold(alpha),
                chi2_quantile(1.0 - alpha / 5.0, 1.0), 1e-9);
  }
}

TEST(Lrt, SignificanceEquivalence) {
  // statistic > threshold(alpha)  <=>  p_adjusted < alpha (both derived
  // from the same chi^2_1 tail with the 5x correction).
  Rng rng(37);
  const double alpha = 1e-3;
  const double threshold = lrt_threshold(alpha);
  for (int trial = 0; trial < 300; ++trial) {
    TrackCounts z{};
    for (auto& v : z) v = rng.next_double() * 10.0;
    z[rng.next_below(5)] += rng.next_double() * 20.0;
    const LrtResult r = lrt_monoploid(z);
    EXPECT_EQ(r.statistic > threshold, r.p_adjusted < alpha)
        << "stat=" << r.statistic << " p=" << r.p_adjusted;
  }
}

TEST(Lrt, DispatchOnPloidy) {
  const TrackCounts z = {10, 10, 0, 0, 0};
  EXPECT_FALSE(lrt_test(z, Ploidy::kMonoploid).heterozygous);
  EXPECT_TRUE(lrt_test(z, Ploidy::kDiploid).heterozygous);
}

// ---------------------------------------------------------------------------
// FDR

TEST(Fdr, RejectsObviousSignals) {
  std::vector<double> p = {1e-10, 1e-8, 0.4, 0.6, 0.9};
  const auto keep = benjamini_hochberg(p, 0.05);
  EXPECT_TRUE(keep[0]);
  EXPECT_TRUE(keep[1]);
  EXPECT_FALSE(keep[2]);
  EXPECT_FALSE(keep[3]);
  EXPECT_FALSE(keep[4]);
}

TEST(Fdr, NothingSignificant) {
  std::vector<double> p = {0.5, 0.7, 0.9};
  const auto keep = benjamini_hochberg(p, 0.05);
  for (const bool k : keep) EXPECT_FALSE(k);
  EXPECT_DOUBLE_EQ(benjamini_hochberg_threshold(p, 0.05), 0.0);
}

TEST(Fdr, EmptyInput) {
  EXPECT_TRUE(benjamini_hochberg({}, 0.05).empty());
}

TEST(Fdr, StepUpProperty) {
  // p_i = q * i / m exactly on the boundary: all rejected.
  const double q = 0.1;
  const std::size_t m = 20;
  std::vector<double> p;
  for (std::size_t i = 1; i <= m; ++i) {
    p.push_back(q * static_cast<double>(i) / static_cast<double>(m));
  }
  const auto keep = benjamini_hochberg(p, q);
  for (const bool k : keep) EXPECT_TRUE(k);
}

TEST(Fdr, ControlsFalseDiscoveryOnUniformNulls) {
  // With pure-null uniform p-values, BH rejects nothing most of the time;
  // across repetitions the false discovery proportion stays near q.
  Rng rng(43);
  int total_rejections = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> p(50);
    for (auto& x : p) x = rng.next_double();
    const auto keep = benjamini_hochberg(p, 0.05);
    for (const bool k : keep) total_rejections += k ? 1 : 0;
  }
  // Expected rejections under the null are well below 5% of all tests.
  EXPECT_LT(total_rejections, reps * 50 * 0.05);
}

TEST(Fdr, RejectsInvalidQ) {
  EXPECT_THROW(benjamini_hochberg({0.5}, 0.0), ConfigError);
  EXPECT_THROW(benjamini_hochberg({0.5}, 1.0), ConfigError);
}

}  // namespace
}  // namespace gnumap

// Unit tests for gnumap/io: FASTA, FASTQ, qualities, catalogs, SNP output.
#include <gtest/gtest.h>

#include <sstream>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/fasta.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/io/snp_catalog.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

// ---------------------------------------------------------------------------
// Quality codecs

TEST(Quality, PhredErrorRoundTrip) {
  for (std::uint8_t q = 0; q <= kMaxPhred; ++q) {
    EXPECT_EQ(error_to_phred(phred_to_error(q)), q);
  }
}

TEST(Quality, KnownValues) {
  EXPECT_DOUBLE_EQ(phred_to_error(0), 1.0);
  EXPECT_DOUBLE_EQ(phred_to_error(10), 0.1);
  EXPECT_DOUBLE_EQ(phred_to_error(20), 0.01);
  EXPECT_DOUBLE_EQ(phred_to_error(30), 0.001);
}

TEST(Quality, ErrorToPhredClamps) {
  EXPECT_EQ(error_to_phred(0.0), kMaxPhred);
  EXPECT_EQ(error_to_phred(2.0), 0);
}

TEST(Quality, DecodeEncodeAscii) {
  const std::string ascii = "!I5#";
  const auto quals = decode_quals(ascii);
  ASSERT_EQ(quals.size(), 4u);
  EXPECT_EQ(quals[0], 0);
  EXPECT_EQ(quals[1], 40);
  EXPECT_EQ(encode_quals(quals), ascii);
}

TEST(Quality, DecodeRejectsOutOfRange) {
  EXPECT_THROW(decode_quals("\x01"), ParseError);
}

TEST(Quality, BaseWeightsSumToOne) {
  for (std::uint8_t base = 0; base < 5; ++base) {
    for (std::uint8_t q : {0, 10, 20, 40, 60}) {
      const auto w = base_weights(base, q);
      float sum = 0.0f;
      for (const float v : w) sum += v;
      EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
  }
}

TEST(Quality, BaseWeightsFavorCalledBase) {
  const auto w = base_weights(2, 30);
  EXPECT_NEAR(w[2], 0.999f, 1e-4f);
  EXPECT_NEAR(w[0], 0.001f / 3.0f, 1e-5f);
}

TEST(Quality, NBaseIsUniform) {
  const auto w = base_weights(kBaseN, 40);
  for (const float v : w) EXPECT_FLOAT_EQ(v, 0.25f);
}

// ---------------------------------------------------------------------------
// FASTA

TEST(Fasta, ParsesMultiRecord) {
  std::istringstream in(">chr1 description here\nACGT\nACG\n>chr2\nTTTT\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, "chr1");
  EXPECT_EQ(records[0].second, "ACGTACG");
  EXPECT_EQ(records[1].first, "chr2");
  EXPECT_EQ(records[1].second, "TTTT");
}

TEST(Fasta, RoundTrip) {
  const std::vector<FastaRecord> records = {
      {"a", std::string(150, 'A')}, {"b", "CGT"}};
  std::ostringstream out;
  write_fasta(out, records, 70);
  std::istringstream in(out.str());
  EXPECT_EQ(read_fasta(in), records);
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>chr1\nACGT\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Fasta, RejectsEmptyName) {
  std::istringstream in(">\nACGT\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Fasta, GenomeFromFasta) {
  std::istringstream in(">chr1\nACGT\n>chr2\nGG\n");
  const Genome g = genome_from_fasta(in);
  EXPECT_EQ(g.num_contigs(), 2u);
  EXPECT_EQ(g.contig_name(0), "chr1");
  EXPECT_EQ(g.contig_size(1), 2u);
}

TEST(Fasta, EmptyInputYieldsNoRecords) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fasta, HandlesCrlfAndMissingTrailingNewline) {
  std::istringstream in(">chr1 desc\r\nACGT\r\nTTAA\r\n>chr2\r\nGG");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, "chr1");
  EXPECT_EQ(records[0].second, "ACGTTTAA");
  EXPECT_EQ(records[1].second, "GG");
}

TEST(Fasta, SkipsUtf8ByteOrderMark) {
  std::istringstream in("\xEF\xBB\xBF>chr1\nACGT\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, "chr1");
}

// ---------------------------------------------------------------------------
// FASTQ

TEST(Fastq, ParsesRecords) {
  std::istringstream in(
      "@read1 extra\nACGT\n+\nIIII\n@read2\nGGTT\n+read2\n!!!!\n");
  const auto reads = read_fastq(in);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "read1");
  EXPECT_EQ(decode_sequence(reads[0].bases), "ACGT");
  EXPECT_EQ(reads[0].quals[0], 40);
  EXPECT_EQ(reads[1].quals[3], 0);
}

TEST(Fastq, RoundTrip) {
  std::vector<Read> reads(2);
  reads[0].name = "r1";
  reads[0].bases = encode_sequence("ACGTN");
  reads[0].quals = {30, 30, 20, 10, 0};
  reads[1].name = "r2";
  reads[1].bases = encode_sequence("TT");
  reads[1].quals = {40, 40};
  std::ostringstream out;
  write_fastq(out, reads);
  std::istringstream in(out.str());
  const auto parsed = read_fastq(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].bases, reads[0].bases);
  EXPECT_EQ(parsed[0].quals, reads[0].quals);
  EXPECT_EQ(parsed[1].name, "r2");
}

TEST(Fastq, RejectsTruncatedRecord) {
  std::istringstream in("@read1\nACGT\n+\n");
  Read read;
  FastqReader reader(in);
  EXPECT_THROW(reader.next(read), ParseError);
}

TEST(Fastq, RejectsLengthMismatch) {
  std::istringstream in("@read1\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, RejectsBadHeader) {
  std::istringstream in("read1\nACGT\n+\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, RejectsBadSeparator) {
  std::istringstream in("@read1\nACGT\nIIII\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, SkipsBlankLinesBetweenRecords) {
  std::istringstream in("@r1\nAC\n+\nII\n\n\n@r2\nGT\n+\nII\n");
  EXPECT_EQ(read_fastq(in).size(), 2u);
}

TEST(Fastq, Phred64Offset) {
  std::istringstream in("@r\nAC\n+\nhh\n");
  const auto reads = read_fastq(in, kPhred64);
  EXPECT_EQ(reads[0].quals[0], 40);
}

TEST(Fastq, HandlesCrlfLineEndings) {
  std::istringstream in(
      "@read1 extra\r\nACGT\r\n+\r\nIIII\r\n@read2\r\nGGTT\r\n+\r\n!!!!\r\n");
  const auto reads = read_fastq(in);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "read1");
  EXPECT_EQ(decode_sequence(reads[0].bases), "ACGT");
  EXPECT_EQ(reads[1].name, "read2");
  EXPECT_EQ(reads[1].quals[3], 0);
}

TEST(Fastq, HandlesMissingTrailingNewline) {
  std::istringstream in("@r1\nACGT\n+\nIIII");
  const auto reads = read_fastq(in);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].quals.size(), 4u);
}

TEST(Fastq, HandlesCrlfWithMissingTrailingNewline) {
  std::istringstream in("@r1\r\nACGT\r\n+\r\nIIII");
  const auto reads = read_fastq(in);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(decode_sequence(reads[0].bases), "ACGT");
}

TEST(Fastq, SkipsUtf8ByteOrderMark) {
  std::istringstream in("\xEF\xBB\xBF@r1\nAC\n+\nII\n");
  const auto reads = read_fastq(in);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].name, "r1");
}

TEST(Fastq, CrlfStillRejectsGenuinelyBadHeader) {
  // CRLF tolerance must not soften structural checks: the exact ParseError
  // message for a missing '@' is preserved.
  std::istringstream in("read1\r\nACGT\r\n+\r\nIIII\r\n");
  try {
    read_fastq(in);
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("does not start with '@'"),
              std::string::npos);
  }
}

TEST(Fastq, CrlfStillRejectsTruncatedRecord) {
  std::istringstream in("@r1\r\nACGT\r\n+\r\n");
  Read read;
  FastqReader reader(in);
  try {
    reader.next(read);
    FAIL() << "no exception";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated record"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// SNP catalog

TEST(Catalog, RoundTrip) {
  SnpCatalog catalog;
  catalog.push_back({"chr1", 100, encode_base('A'), encode_base('G'),
                     Zygosity::kHom});
  catalog.push_back({"chr2", 5, encode_base('C'), encode_base('T'),
                     Zygosity::kHet});
  std::ostringstream out;
  write_catalog(out, catalog);
  std::istringstream in(out.str());
  const auto parsed = read_catalog(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].contig, "chr1");
  EXPECT_EQ(parsed[0].position, 100u);
  EXPECT_EQ(parsed[0].ref, encode_base('A'));
  EXPECT_EQ(parsed[1].zygosity, Zygosity::kHet);
}

TEST(Catalog, RejectsShortLines) {
  std::istringstream in("chr1\t100\tA\n");
  EXPECT_THROW(read_catalog(in), ParseError);
}

TEST(Catalog, RejectsNAllele) {
  std::istringstream in("chr1\t100\tN\tA\n");
  EXPECT_THROW(read_catalog(in), ParseError);
}

TEST(Catalog, RejectsBadZygosity) {
  std::istringstream in("chr1\t100\tA\tG\tmaybe\n");
  EXPECT_THROW(read_catalog(in), ParseError);
}

TEST(Catalog, SkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\nchr1\t1\tA\tG\n");
  EXPECT_EQ(read_catalog(in).size(), 1u);
}

TEST(Catalog, HandlesCrlfAndMissingTrailingNewline) {
  std::istringstream in("# header\r\nchr1\t1\tA\tG\r\nchr1\t9\tC\tT\thet");
  const auto parsed = read_catalog(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].alt, encode_base('G'));
  EXPECT_EQ(parsed[1].zygosity, Zygosity::kHet);
}

TEST(Catalog, SkipsUtf8ByteOrderMark) {
  std::istringstream in("\xEF\xBB\xBF# header\nchr1\t1\tA\tG\n");
  EXPECT_EQ(read_catalog(in).size(), 1u);
}

// ---------------------------------------------------------------------------
// SNP writers

SnpCall make_call() {
  SnpCall call;
  call.contig = "chr1";
  call.position = 41;
  call.ref = encode_base('A');
  call.allele1 = encode_base('G');
  call.allele2 = encode_base('G');
  call.coverage = 13.5;
  call.lrt_stat = 22.1;
  call.p_value = 1.2e-5;
  return call;
}

TEST(SnpWriter, TsvContainsFields) {
  std::ostringstream out;
  write_snps_tsv(out, {make_call()});
  const std::string text = out.str();
  EXPECT_NE(text.find("chr1\t41\tA\tG\tG"), std::string::npos);
  EXPECT_NE(text.find("13.50"), std::string::npos);
}

TEST(SnpWriter, VcfHomozygousAltGenotype) {
  std::ostringstream out;
  write_snps_vcf(out, {make_call()});
  const std::string text = out.str();
  EXPECT_NE(text.find("##fileformat=VCFv4.2"), std::string::npos);
  // VCF is 1-based.
  EXPECT_NE(text.find("chr1\t42\t.\tA\tG"), std::string::npos);
  EXPECT_NE(text.find("1/1"), std::string::npos);
}

TEST(SnpWriter, VcfHeterozygousGenotype) {
  auto call = make_call();
  call.allele1 = call.ref;  // ref/alt het
  std::ostringstream out;
  write_snps_vcf(out, {call});
  EXPECT_NE(out.str().find("0/1"), std::string::npos);
}

}  // namespace
}  // namespace gnumap

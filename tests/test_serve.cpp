// Tests for the serving subsystem: wire codec, admission control, and the
// gnumapd server end to end over real sockets — byte-identity with the
// offline pipeline (alone and under concurrent clients with a mid-stream
// disconnect), typed errors for malformed traffic, BUSY under a full
// admission window, bounded in-flight reads, graceful shutdown, the
// gnumap_serve_* metrics export, the embedded admin HTTP endpoint, and
// protocol-v3 trace-id propagation (with v2 interop).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnumap/core/pipeline.hpp"
#include "gnumap/io/fastq.hpp"
#include "gnumap/io/read_stream.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/serve/admission.hpp"
#include "gnumap/serve/client.hpp"
#include "gnumap/serve/server.hpp"
#include "gnumap/serve/socket.hpp"
#include "gnumap/serve/wire.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"

namespace gnumap {
namespace {

using serve::AdmissionController;
using serve::ClientOptions;
using serve::Frame;
using serve::FrameType;
using serve::MappingClient;
using serve::MappingServer;
using serve::ServeOptions;
using serve::Socket;
using serve::WireError;
using serve::WireErrorCode;

// ---------------------------------------------------------------------------
// Helpers

struct Workload {
  Genome ref;
  std::vector<Read> reads;
  std::string fastq;
};

Workload make_workload(std::uint64_t length = 20000, double coverage = 6.0) {
  ReferenceGenOptions ref_options;
  ref_options.length = length;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  Workload w;
  w.ref = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 12;
  const SnpCatalog catalog = generate_catalog(w.ref, catalog_options);
  const Genome individual = apply_catalog(w.ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  std::ostringstream fastq;
  write_fastq(fastq, w.reads);
  w.fastq = fastq.str();
  return w;
}

PipelineConfig serve_config() {
  PipelineConfig config;
  config.index.k = 9;
  config.alpha = 1e-4;
  config.threads = 2;
  config.stream_batch = 32;
  config.queue_depth = 2;
  config.min_parallel_reads = 0;  // force the staged path on small inputs
  return config;
}

ServeOptions test_options() {
  ServeOptions options;
  options.port = 0;  // ephemeral
  options.io_timeout_ms = 10'000;
  options.request_timeout_ms = 60'000;
  return options;
}

/// Offline reference outputs for byte-identity checks: the same config the
/// server runs, through the public pipeline entry point.
struct OfflineResult {
  std::string tsv;
  std::string sam;
};

OfflineResult offline_outputs(const Workload& w, const PipelineConfig& config) {
  VectorReadStream reads(w.reads, config.stream_batch);
  std::ostringstream sam;
  const PipelineResult result =
      run_pipeline_stream(w.ref, reads, config, nullptr, &sam);
  std::ostringstream tsv;
  write_snps_tsv(tsv, result.calls);
  return {tsv.str(), sam.str()};
}

/// Connects and completes the handshake at the raw frame level (for tests
/// that need to send traffic MappingClient would refuse to produce).
Socket raw_hello(std::uint16_t port) {
  Socket sock = serve::connect_tcp("127.0.0.1", port, 5'000);
  serve::write_frame(sock, FrameType::kHello,
                     serve::encode_hello(serve::kProtocolVersion, "raw-test"),
                     5'000);
  auto reply = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
  if (!reply.has_value() || reply->type != FrameType::kHelloOk) {
    throw WireError(WireErrorCode::kProtocol, "handshake failed in test");
  }
  return sock;
}

/// Reads frames until an ERROR arrives and returns its decoded code; fails
/// the test if the connection closes first.
WireErrorCode expect_error_frame(Socket& sock) {
  for (;;) {
    auto frame = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
    if (!frame.has_value()) {
      ADD_FAILURE() << "connection closed without an ERROR frame";
      return WireErrorCode::kInternal;
    }
    if (frame->type == FrameType::kError) {
      return serve::decode_error(frame->payload).first;
    }
  }
}

/// Minimal HTTP/1.0 GET against the admin endpoint: one request, read to
/// close (the server always answers Connection: close), split off the
/// status code and body.
struct HttpResponse {
  int status = 0;
  std::string body;
};

HttpResponse http_get(int port, const std::string& target) {
  Socket sock =
      serve::connect_tcp("127.0.0.1", static_cast<std::uint16_t>(port), 5'000);
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  sock.send_all(request.data(), request.size(), 5'000);
  std::string raw;
  char buf[4096];
  for (;;) {
    const std::size_t n = sock.recv_some(buf, sizeof buf, 30'000);
    if (n == 0) break;
    raw.append(buf, n);
  }
  HttpResponse resp;
  const std::size_t space = raw.find(' ');
  if (space != std::string::npos) {
    resp.status = std::atoi(raw.c_str() + space + 1);
  }
  const std::size_t blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) resp.body = raw.substr(blank + 4);
  return resp;
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(Wire, IntegerCodecRoundTrips) {
  std::string payload;
  serve::put_u16(payload, 0xBEEF);
  serve::put_u32(payload, 0xDEADBEEFu);
  serve::put_u64(payload, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(serve::get_u16(payload, 0), 0xBEEF);
  EXPECT_EQ(serve::get_u32(payload, 2), 0xDEADBEEFu);
  EXPECT_EQ(serve::get_u64(payload, 6), 0xDEADBEEFCAFEF00Dull);
  EXPECT_THROW(serve::get_u32(payload, 11), WireError);  // out of bounds
  EXPECT_THROW(serve::get_u64(payload, 7), WireError);   // out of bounds
}

TEST(Wire, MapBeginCodecAcceptsEveryHistoricalForm) {
  // v3: flags + deadline + trace id + parent span id, 21 bytes.
  serve::MapBeginInfo info;
  info.flags = 0x01;
  info.deadline_ms = 12'345;
  info.trace_id = 0xDEADBEEFCAFEF00Dull;
  info.parent_span_id = 0x0123456789ABCDEFull;
  const std::string v3 = serve::encode_map_begin(info, /*version=*/3);
  EXPECT_EQ(v3.size(), 21u);
  const serve::MapBeginInfo back = serve::decode_map_begin(v3);
  EXPECT_EQ(back.flags, info.flags);
  EXPECT_EQ(back.deadline_ms, info.deadline_ms);
  EXPECT_EQ(back.trace_id, info.trace_id);
  EXPECT_EQ(back.parent_span_id, info.parent_span_id);
  EXPECT_TRUE(back.genome_id.empty());

  // v4: the same payload plus a u16 genome-id length and the id bytes;
  // an empty id is just the two-byte length trailer (23 bytes total).
  const std::string v4_plain = serve::encode_map_begin(info);
  EXPECT_EQ(v4_plain.size(), 23u);
  EXPECT_EQ(v4_plain.substr(0, 21), v3);
  EXPECT_TRUE(serve::decode_map_begin(v4_plain).genome_id.empty());

  info.genome_id = "hg38";
  const std::string v4 = serve::encode_map_begin(info);
  EXPECT_EQ(v4.size(), 23u + 4u);
  const serve::MapBeginInfo v4_back = serve::decode_map_begin(v4);
  EXPECT_EQ(v4_back.genome_id, "hg38");
  EXPECT_EQ(v4_back.trace_id, info.trace_id);
  // A non-empty genome id cannot be narrowed onto a v3 wire — dropping
  // it silently would map against the wrong genome.
  EXPECT_THROW(serve::encode_map_begin(info, /*version=*/3),
               serve::WireError);
  // A length trailer that disagrees with the remaining bytes is typed.
  EXPECT_THROW(serve::decode_map_begin(v4.substr(0, v4.size() - 1)),
               serve::WireError);
  info.genome_id.clear();

  // v2: flags + deadline only; the trace fields decode to zero.
  const std::string v2 = serve::encode_map_begin(0x01, 12'345);
  EXPECT_EQ(v2.size(), 5u);
  const serve::MapBeginInfo v2_back = serve::decode_map_begin(v2);
  EXPECT_EQ(v2_back.flags, 0x01);
  EXPECT_EQ(v2_back.deadline_ms, 12'345u);
  EXPECT_EQ(v2_back.trace_id, 0u);
  EXPECT_EQ(v2_back.parent_span_id, 0u);

  // A v3 payload with zeroed trace fields is byte-identical to v2 plus
  // sixteen zero bytes — nothing version-dependent hides in the prefix.
  serve::MapBeginInfo plain;
  plain.flags = 0x01;
  plain.deadline_ms = 12'345;
  EXPECT_EQ(serve::encode_map_begin(plain).substr(0, 5), v2);

  // 1-byte flags-only form from hand-rolled peers.
  const serve::MapBeginInfo tiny =
      serve::decode_map_begin(std::string(1, '\x02'));
  EXPECT_EQ(tiny.flags, 0x02);
  EXPECT_EQ(tiny.deadline_ms, 0u);
  EXPECT_EQ(tiny.trace_id, 0u);

  EXPECT_EQ(serve::trace_id_hex(0xDEADBEEFCAFEF00Dull), "deadbeefcafef00d");
  EXPECT_EQ(serve::trace_id_hex(0x5ull), "0000000000000005");
}

TEST(Wire, MessageCodecsRoundTrip) {
  const auto [version, text] =
      serve::decode_hello(serve::encode_hello(7, "banner text"));
  EXPECT_EQ(version, 7);
  EXPECT_EQ(text, "banner text");

  const auto [retry, msg] = serve::decode_busy(serve::encode_busy(250, "full"));
  EXPECT_EQ(retry, 250u);
  EXPECT_EQ(msg, "full");

  const auto [code, what] = serve::decode_error(
      serve::encode_error(WireErrorCode::kParse, "bad fastq"));
  EXPECT_EQ(code, WireErrorCode::kParse);
  EXPECT_EQ(what, "bad fastq");
}

TEST(Wire, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(serve::wire_error_code_name(WireErrorCode::kTooLarge),
               "too_large");
  EXPECT_STREQ(serve::wire_error_code_name(WireErrorCode::kShuttingDown),
               "shutting_down");
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Admission, AlwaysAdmitsOneWhenIdle) {
  AdmissionController admission(100);
  // A reservation larger than the whole window is admitted while idle, so
  // no configuration can wedge the service.
  EXPECT_TRUE(admission.try_acquire(1, 1'000));
  EXPECT_EQ(admission.admitted(), 1'000u);
  // ...but nothing else fits until it releases.
  EXPECT_FALSE(admission.try_acquire(2, 1));
  admission.release(1, 1'000);
  EXPECT_TRUE(admission.try_acquire(2, 1));
}

TEST(Admission, RefusesBeyondCapacityAndRecoversOnRelease) {
  AdmissionController admission(100);
  EXPECT_TRUE(admission.try_acquire(1, 60));
  EXPECT_TRUE(admission.try_acquire(2, 40));
  EXPECT_FALSE(admission.try_acquire(3, 1));
  admission.release(2, 40);
  EXPECT_TRUE(admission.try_acquire(3, 30));
  EXPECT_EQ(admission.peak(), 100u);
}

TEST(Admission, PerConnectionCapLimitsOneClient) {
  AdmissionController admission(100, /*per_conn_cap=*/50);
  EXPECT_TRUE(admission.try_acquire(1, 40));
  // Connection 1 would exceed its 50-read share; connection 2 still fits.
  EXPECT_FALSE(admission.try_acquire(1, 20));
  EXPECT_TRUE(admission.try_acquire(2, 20));
}

TEST(Admission, ForgetConnectionReleasesItsHoldings) {
  AdmissionController admission(100);
  EXPECT_TRUE(admission.try_acquire(1, 80));
  EXPECT_FALSE(admission.try_acquire(2, 80));
  admission.forget_connection(1);  // connection died without releasing
  EXPECT_EQ(admission.admitted(), 0u);
  EXPECT_TRUE(admission.try_acquire(2, 80));
}

// ---------------------------------------------------------------------------
// End to end over real sockets

TEST(Serve, ByteIdenticalToOfflinePipeline) {
  const Workload w = make_workload();
  const PipelineConfig config = serve_config();
  const OfflineResult offline = offline_outputs(w, config);

  MappingServer server(w.ref, config, test_options());
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  EXPECT_NE(client.banner().find("gnumapd"), std::string::npos);

  std::istringstream fastq(w.fastq);
  std::ostringstream tsv, sam;
  const auto outcome = client.map(fastq, tsv, &sam);
  EXPECT_FALSE(outcome.busy);
  EXPECT_EQ(tsv.str(), offline.tsv);
  EXPECT_EQ(sam.str(), offline.sam);
  EXPECT_EQ(outcome.stats.at("reads_total"),
            std::to_string(w.reads.size()));

  // Same session, second request: the hot index serves it unchanged.
  std::istringstream fastq2(w.fastq);
  std::ostringstream tsv2;
  const auto outcome2 = client.map(fastq2, tsv2);
  EXPECT_FALSE(outcome2.busy);
  EXPECT_EQ(tsv2.str(), offline.tsv);

  server.request_stop();
  server.wait();
}

TEST(Serve, ConcurrentClientsWithMidStreamDisconnect) {
  const Workload w = make_workload();
  const PipelineConfig config = serve_config();
  const OfflineResult offline = offline_outputs(w, config);

  MappingServer server(w.ref, config, test_options());
  server.start();

  // One misbehaving peer vanishes mid-upload while four well-behaved
  // clients map concurrently; every served result must still be
  // byte-identical to the offline pipeline.
  std::thread disconnector([&] {
    try {
      Socket sock = raw_hello(server.port());
      serve::write_frame(sock, FrameType::kMapBegin, std::string(1, '\0'),
                         5'000);
      auto go = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
      if (go.has_value() && go->type == FrameType::kMapGo) {
        serve::write_frame(sock, FrameType::kReadsChunk,
                           w.fastq.substr(0, w.fastq.size() / 2), 5'000);
      }
      sock.close();  // abrupt: no MAP_END, no shutdown
    } catch (const WireError&) {
      // Losing a race with server-side teardown is fine; the assertion is
      // that the *server* survives, checked below.
    }
  });

  constexpr int kClients = 4;
  std::vector<std::string> tsv_results(kClients);
  std::vector<std::string> sam_results(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        ClientOptions client_options;
        client_options.port = server.port();
        client_options.busy_retries = 100;  // window contention is expected
        MappingClient client(client_options);
        std::istringstream fastq(w.fastq);
        std::ostringstream tsv, sam;
        const auto outcome = client.map(fastq, tsv, &sam);
        if (outcome.busy) {
          ++failures;
          return;
        }
        tsv_results[i] = tsv.str();
        sam_results[i] = sam.str();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  disconnector.join();
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(tsv_results[i], offline.tsv) << "client " << i;
    EXPECT_EQ(sam_results[i], offline.sam) << "client " << i;
  }

  // The server survived the disconnect and still answers.
  ClientOptions probe_options;
  probe_options.port = server.port();
  MappingClient probe(probe_options);
  const auto kv = serve::parse_kv_lines(probe.stats());
  EXPECT_GE(std::stoull(kv.at("requests_total")), 4u);

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Typed errors for malformed traffic

TEST(Serve, RejectsWrongProtocolVersion) {
  const Workload w = make_workload(8000, 1.0);
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();

  {
    // v1 framing had no CRC and cannot be spoken; the version field draws
    // a typed refusal.
    Socket sock = serve::connect_tcp("127.0.0.1", server.port(), 5'000);
    serve::write_frame(sock, FrameType::kHello,
                       serve::encode_hello(serve::kMinProtocolVersion - 1,
                                           "old"),
                       5'000);
    EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kBadVersion);
  }
  {
    // A NEWER client is negotiated down to the server's version, not
    // refused.
    Socket sock = serve::connect_tcp("127.0.0.1", server.port(), 5'000);
    serve::write_frame(sock, FrameType::kHello,
                       serve::encode_hello(serve::kProtocolVersion + 1,
                                           "new"),
                       5'000);
    auto reply = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::kHelloOk);
    EXPECT_EQ(serve::decode_hello(reply->payload).first,
              serve::kProtocolVersion);
  }

  server.request_stop();
  server.wait();
}

TEST(Serve, RejectsNonHelloFirstFrameAndUnknownTypes) {
  const Workload w = make_workload(8000, 1.0);
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();

  {
    Socket sock = serve::connect_tcp("127.0.0.1", server.port(), 5'000);
    serve::write_frame(sock, FrameType::kStats, "", 5'000);
    EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kProtocol);
  }
  {
    Socket sock = raw_hello(server.port());
    serve::write_frame(sock, static_cast<FrameType>(0x7f), "junk", 5'000);
    EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kProtocol);
  }
  {
    // MAP_BEGIN must carry a flags byte.
    Socket sock = raw_hello(server.port());
    serve::write_frame(sock, FrameType::kMapBegin, "", 5'000);
    EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kBadFrame);
  }

  server.request_stop();
  server.wait();
}

TEST(Serve, RejectsOversizedFrames) {
  const Workload w = make_workload(8000, 1.0);
  ServeOptions options = test_options();
  options.max_frame_bytes = 4096;
  MappingServer server(w.ref, serve_config(), options);
  server.start();

  Socket sock = serve::connect_tcp("127.0.0.1", server.port(), 5'000);
  // The handshake itself must fit, so HELLO is fine...
  serve::write_frame(sock, FrameType::kHello,
                     serve::encode_hello(serve::kProtocolVersion, "big"),
                     5'000);
  auto reply = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kHelloOk);
  // ...but a frame above max_frame_bytes draws a typed refusal.
  serve::write_frame(sock, FrameType::kStats, std::string(8192, 'x'), 5'000);
  EXPECT_EQ(expect_error_frame(sock), WireErrorCode::kTooLarge);

  server.request_stop();
  server.wait();
}

TEST(Serve, FastqParseFailureReturnsTypedError) {
  const Workload w = make_workload(8000, 1.0);
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  std::istringstream garbage("this is not\nfastq at all\n");
  std::ostringstream tsv;
  try {
    client.map(garbage, tsv);
    FAIL() << "no exception for malformed FASTQ";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kParse) << e.what();
  }

  server.request_stop();
  server.wait();
}

TEST(Serve, TruncatedUploadAtRecordBoundaryIsTypedError) {
  // Regression: a disconnect mid-upload that lands exactly on a FASTQ
  // record boundary must NOT be treated as a clean end of input — that
  // would map the partial batch and answer MAP_DONE success with silently
  // truncated results.  Half-close keeps our read side open so the reply
  // is observable.
  const Workload w = make_workload(8000, 1.0);
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();

  Socket sock = raw_hello(server.port());
  serve::write_frame(sock, FrameType::kMapBegin, std::string(1, '\0'), 5'000);
  auto go = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(go.has_value());
  ASSERT_EQ(go->type, FrameType::kMapGo);

  // Exactly one complete 4-line record, then no MAP_END.
  std::size_t pos = 0;
  for (int nl = 0; nl < 4; ++nl) pos = w.fastq.find('\n', pos) + 1;
  serve::write_frame(sock, FrameType::kReadsChunk, w.fastq.substr(0, pos),
                     5'000);
  sock.shutdown_write();

  for (;;) {
    auto frame = serve::read_frame(sock, serve::kDefaultMaxFrameBytes,
                                   10'000);
    ASSERT_TRUE(frame.has_value()) << "connection closed without ERROR";
    ASSERT_NE(frame->type, FrameType::kMapDone)
        << "truncated upload was answered with MAP_DONE success";
    if (frame->type == FrameType::kError) {
      EXPECT_EQ(serve::decode_error(frame->payload).first,
                WireErrorCode::kClosed);
      break;
    }
  }

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Admission over the wire

TEST(Serve, BusyWhenAdmissionWindowHeldThenRecovers) {
  const Workload w = make_workload(8000, 2.0);
  ServeOptions options = test_options();
  options.admission_reads = 1;  // any request fills the window
  options.busy_retry_ms = 10;
  MappingServer server(w.ref, serve_config(), options);
  server.start();

  // Holder: admitted via always-admit-one, then parks without finishing.
  Socket holder = raw_hello(server.port());
  serve::write_frame(holder, FrameType::kMapBegin, std::string(1, '\0'),
                     5'000);
  auto go = serve::read_frame(holder, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(go.has_value());
  ASSERT_EQ(go->type, FrameType::kMapGo);

  // Second request while the window is held: BUSY, not a hang.
  ClientOptions client_options;
  client_options.port = server.port();
  client_options.busy_retries = 0;
  MappingClient client(client_options);
  {
    std::istringstream fastq(w.fastq);
    std::ostringstream tsv;
    const auto outcome = client.map(fastq, tsv);
    EXPECT_TRUE(outcome.busy);
  }

  // Holder finishes (empty request) and releases the window...
  serve::write_frame(holder, FrameType::kMapEnd, "", 5'000);
  for (;;) {
    auto frame = serve::read_frame(holder, serve::kDefaultMaxFrameBytes,
                                   10'000);
    ASSERT_TRUE(frame.has_value());
    if (frame->type == FrameType::kMapDone) break;
  }

  // ...after which the same client's retry is admitted.
  {
    std::istringstream fastq(w.fastq);
    std::ostringstream tsv;
    ClientOptions retry_options = client_options;
    retry_options.busy_retries = 50;
    MappingClient retry_client(retry_options);
    const auto outcome = retry_client.map(fastq, tsv);
    EXPECT_FALSE(outcome.busy);
    EXPECT_GT(outcome.stats.at("reads_total"), "0");
  }

  server.request_stop();
  server.wait();
}

TEST(Serve, InFlightReadsBoundedByAdmissionWindow) {
  // Load test: a request over a workload much larger than one window must
  // report an in-flight peak within the reservation it was admitted under.
  const Workload w = make_workload(30000, 10.0);
  const PipelineConfig config = serve_config();
  MappingServer server(w.ref, config, test_options());
  server.start();

  const std::uint64_t window = server.request_window_reads();
  ASSERT_LT(window, w.reads.size())
      << "workload too small to exercise the bound";

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv;
  const auto outcome = client.map(fastq, tsv);
  EXPECT_FALSE(outcome.busy);
  EXPECT_EQ(outcome.stats.at("window_reads"), std::to_string(window));
  EXPECT_LE(std::stoull(outcome.stats.at("in_flight_peak")), window);

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Shutdown and observability

TEST(Serve, ShutdownFrameDrainsTheServer) {
  const Workload w = make_workload(8000, 1.0);
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  client.shutdown_server();

  server.wait();  // returns because SHUTDOWN tripped the stop flag
  EXPECT_TRUE(server.stopping());
}

TEST(Serve, StatsAndPrometheusExport) {
  const Workload w = make_workload();
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();

  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv;
  const auto outcome = client.map(fastq, tsv);
  EXPECT_FALSE(outcome.busy);

  const auto kv = serve::parse_kv_lines(client.stats());
  EXPECT_GE(std::stoull(kv.at("requests_total")), 1u);
  EXPECT_EQ(kv.at("protocol_version"),
            std::to_string(serve::kProtocolVersion));
  EXPECT_GT(std::stoull(kv.at("bytes_received")), 0u);

  server.request_stop();
  server.wait();

  // The acceptance-criteria metrics are present in the Prometheus export.
  std::ostringstream prom;
  obs::registry().write_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("gnumap_serve_request_seconds"), std::string::npos);
  EXPECT_NE(text.find("gnumap_serve_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("gnumap_serve_rejected_total"), std::string::npos);
  EXPECT_NE(text.find("gnumap_serve_requests_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admin HTTP endpoint

TEST(Serve, AdminDisabledByDefault) {
  const Workload w = make_workload(8000, 1.0);
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();
  // No --admin-port means no admin socket exists at all.
  EXPECT_EQ(server.admin_port(), -1);
  server.request_stop();
  server.wait();
}

TEST(Serve, AdminEndpointsServeLiveState) {
  const Workload w = make_workload();
  const PipelineConfig config = serve_config();
  const OfflineResult offline = offline_outputs(w, config);

  ServeOptions options = test_options();
  options.admin_port = 0;  // ephemeral
  MappingServer server(w.ref, config, options);
  server.start();
  ASSERT_GT(server.admin_port(), 0);

  // Park a raw connection mid-request so the admin pages have live state
  // to show: admitted (MAP_GO seen) but never finishing its upload.
  Socket holder = raw_hello(server.port());
  serve::write_frame(holder, FrameType::kMapBegin, std::string(1, '\0'),
                     5'000);
  auto go = serve::read_frame(holder, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(go.has_value());
  ASSERT_EQ(go->type, FrameType::kMapGo);

  {
    const HttpResponse health = http_get(server.admin_port(), "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body.rfind("ready=1", 0), 0u) << health.body;
  }
  {
    // /statusz sees the parked request: its connection row is in_request
    // and the admission window is holding its reservation.
    const HttpResponse status = http_get(server.admin_port(), "/statusz");
    EXPECT_EQ(status.status, 200);
    EXPECT_NE(status.body.find("\"state\": \"in_request\""),
              std::string::npos)
        << status.body;
    EXPECT_EQ(status.body.find("\"admitted_reads\": 0,"), std::string::npos)
        << status.body;
    EXPECT_NE(status.body.find("\"genome_bases\""), std::string::npos);
    EXPECT_NE(status.body.find("\"git_sha\""), std::string::npos);
  }
  {
    // /metrics is a valid live Prometheus page mid-request: every sample
    // line is "name value" with a parseable value, and the serve family
    // is present.
    const HttpResponse metrics = http_get(server.admin_port(), "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("# TYPE gnumap_serve_requests_total counter"),
              std::string::npos);
    EXPECT_NE(metrics.body.find("gnumap_serve_queue_depth"),
              std::string::npos);
    std::istringstream lines(metrics.body);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
    }
  }
  EXPECT_EQ(http_get(server.admin_port(), "/no-such-page").status, 404);

  // Release the holder (empty request is valid) before the byte-identity
  // check below.
  serve::write_frame(holder, FrameType::kMapEnd, "", 5'000);
  for (;;) {
    auto frame = serve::read_frame(holder, serve::kDefaultMaxFrameBytes,
                                   10'000);
    ASSERT_TRUE(frame.has_value());
    if (frame->type == FrameType::kMapDone) break;
  }

  // Mapping with the admin endpoint enabled changes nothing on the wire.
  ClientOptions client_options;
  client_options.port = server.port();
  MappingClient client(client_options);
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv, sam;
  const auto outcome = client.map(fastq, tsv, &sam);
  EXPECT_FALSE(outcome.busy);
  EXPECT_EQ(tsv.str(), offline.tsv);
  EXPECT_EQ(sam.str(), offline.sam);

  // With requests completed, the bare /tracez digest table is non-empty
  // and carries the per-request latency breakdown.
  const HttpResponse tracez = http_get(server.admin_port(), "/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"slowest_recent_requests\""),
            std::string::npos);
  EXPECT_NE(tracez.body.find("\"map_stage_seconds\""), std::string::npos);
  EXPECT_NE(tracez.body.find("\"gcups\""), std::string::npos);

  server.request_stop();
  server.wait();
}

TEST(Serve, TracezCapturesAChromeTrace) {
  const Workload w = make_workload(8000, 2.0);
  ServeOptions options = test_options();
  options.admin_port = 0;
  MappingServer server(w.ref, serve_config(), options);
  server.start();

  obs::set_trace_enabled(false);
  obs::reset_trace();

  // Start the capture window, then map while it is open so the trace has
  // server-side spans in it.
  std::thread mapper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ClientOptions client_options;
    client_options.port = server.port();
    MappingClient client(client_options);
    std::istringstream fastq(w.fastq);
    std::ostringstream tsv;
    client.map(fastq, tsv);
  });
  const HttpResponse trace =
      http_get(server.admin_port(), "/tracez?duration_ms=2000");
  mapper.join();

  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.body.find("serve_request"), std::string::npos)
      << trace.body.substr(0, 400);
  // The window is over: /tracez left tracing the way it found it.
  EXPECT_FALSE(obs::trace_enabled());

  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Trace-id propagation (protocol v3) and v2 interop

TEST(Serve, TraceIdRoundTripsClientToServer) {
  const Workload w = make_workload(8000, 2.0);
  MappingServer server(w.ref, serve_config(), test_options());
  server.start();

  obs::set_trace_enabled(false);
  obs::reset_trace();
  obs::set_trace_enabled(true);

  constexpr std::uint64_t kTraceId = 0xDEADBEEFCAFEF00Dull;
  ClientOptions client_options;
  client_options.port = server.port();
  client_options.trace_id = kTraceId;  // pinned, not random
  MappingClient client(client_options);
  std::istringstream fastq(w.fastq);
  std::ostringstream tsv;
  const auto outcome = client.map(fastq, tsv);
  EXPECT_FALSE(outcome.busy);

  // The serve_request span is recorded when the handler leaves the
  // request scope, which races the client's MAP_DONE receipt — drain the
  // server before freezing the trace so the span is in the export.
  server.request_stop();
  server.wait();
  obs::set_trace_enabled(false);

  // MAP_DONE echoes the id byte-exactly in its hex form, alongside the
  // server-side timing summary.
  EXPECT_EQ(outcome.trace_id, kTraceId);
  EXPECT_EQ(outcome.stats.at("trace_id"), "deadbeefcafef00d");
  EXPECT_NE(outcome.stats.at("parent_span_id"), "0000000000000000");
  // drain_seconds stays on the wire for old dashboards; format/splice are
  // its split (worker rendering vs. drain splicing).
  for (const char* key :
       {"total_seconds", "admission_wait_seconds", "upload_wait_seconds",
        "decode_seconds", "map_stage_seconds", "drain_seconds",
        "format_seconds", "splice_seconds",
        "call_seconds", "phmm_cells", "gcups"}) {
    EXPECT_TRUE(outcome.stats.count(key)) << "MAP_DONE missing " << key;
  }

  // Server and client run in one process here, so one trace export holds
  // both sides; the id tags the server's serve_request span and the
  // client's map_request span alike — that is what merge_traces.py keys on.
  std::ostringstream exported;
  obs::write_chrome_trace(exported);
  const std::string trace = exported.str();
  EXPECT_NE(trace.find("serve_request"), std::string::npos);
  EXPECT_NE(trace.find("map_request"), std::string::npos);
  EXPECT_NE(trace.find("deadbeefcafef00d"), std::string::npos);
  obs::reset_trace();
}

TEST(Serve, V2ClientStaysByteIdenticalWithoutTraceFields) {
  // A peer that negotiates protocol v2 sends the 5-byte MAP_BEGIN and must
  // get exactly the pre-v3 behaviour: same result bytes, no trace_id key
  // in MAP_DONE.
  const Workload w = make_workload();
  const PipelineConfig config = serve_config();
  const OfflineResult offline = offline_outputs(w, config);

  MappingServer server(w.ref, config, test_options());
  server.start();

  Socket sock = serve::connect_tcp("127.0.0.1", server.port(), 5'000);
  serve::write_frame(sock, FrameType::kHello, serve::encode_hello(2, "v2"),
                     5'000);
  auto hello = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(hello.has_value());
  ASSERT_EQ(hello->type, FrameType::kHelloOk);
  EXPECT_EQ(serve::decode_hello(hello->payload).first, 2);

  serve::write_frame(sock, FrameType::kMapBegin,
                     serve::encode_map_begin(/*flags=*/0, /*deadline_ms=*/0),
                     5'000);
  auto go = serve::read_frame(sock, serve::kDefaultMaxFrameBytes, 5'000);
  ASSERT_TRUE(go.has_value());
  ASSERT_EQ(go->type, FrameType::kMapGo);
  serve::write_frame(sock, FrameType::kReadsChunk, w.fastq, 5'000);
  serve::write_frame(sock, FrameType::kMapEnd, "", 5'000);

  std::string tsv;
  std::string done_payload;
  for (;;) {
    auto frame = serve::read_frame(sock, serve::kDefaultMaxFrameBytes,
                                   60'000);
    ASSERT_TRUE(frame.has_value()) << "connection closed before MAP_DONE";
    ASSERT_NE(frame->type, FrameType::kError);
    if (frame->type == FrameType::kResultTsv) {
      tsv += frame->payload;
    } else if (frame->type == FrameType::kMapDone) {
      done_payload = frame->payload;
      break;
    }
  }
  EXPECT_EQ(tsv, offline.tsv);
  const auto kv = serve::parse_kv_lines(done_payload);
  EXPECT_EQ(kv.count("trace_id"), 0u)
      << "v2 MAP_DONE leaked the v3 trace_id field";
  EXPECT_EQ(kv.at("reads_total"), std::to_string(w.reads.size()));

  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace gnumap

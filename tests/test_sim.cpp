// Tests for gnumap/sim: reference generation, catalogs, mutation, reads.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/quality.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/error.hpp"

namespace gnumap {
namespace {

ReferenceGenOptions small_ref_options() {
  ReferenceGenOptions options;
  options.length = 50000;
  options.n_fraction = 0.0;
  options.repeat_fraction = 0.0;
  return options;
}

// ---------------------------------------------------------------------------
// Reference generation

TEST(ReferenceGen, DeterministicForSeed) {
  const Genome a = generate_reference(small_ref_options());
  const Genome b = generate_reference(small_ref_options());
  ASSERT_EQ(a.num_bases(), b.num_bases());
  for (GenomePos pos = 0; pos < a.num_bases(); ++pos) {
    ASSERT_EQ(a.at(pos), b.at(pos));
  }
}

TEST(ReferenceGen, GcContentApproximatelyHonored) {
  auto options = small_ref_options();
  options.length = 200000;
  options.gc_content = 0.41;
  const Genome g = generate_reference(options);
  std::uint64_t gc = 0;
  for (GenomePos pos = 0; pos < g.num_bases(); ++pos) {
    const auto base = g.at(pos);
    gc += (base == 1 || base == 2) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(gc) / g.num_bases(), 0.41, 0.01);
}

TEST(ReferenceGen, NRunsPresentWhenRequested) {
  auto options = small_ref_options();
  options.n_fraction = 0.01;
  options.n_run = 50;
  const Genome g = generate_reference(options);
  std::uint64_t n_count = 0;
  for (GenomePos pos = 0; pos < g.num_bases(); ++pos) {
    n_count += g.at(pos) == kBaseN ? 1 : 0;
  }
  EXPECT_GT(n_count, 0u);
  EXPECT_LT(n_count, g.num_bases() / 20);
}

TEST(ReferenceGen, RejectsBadOptions) {
  ReferenceGenOptions options;
  options.length = 10;
  EXPECT_THROW(generate_reference(options), ConfigError);
}

// ---------------------------------------------------------------------------
// Catalog generation

TEST(CatalogGen, PlacesRequestedCount) {
  const Genome g = generate_reference(small_ref_options());
  CatalogGenOptions options;
  options.count = 50;
  const auto catalog = generate_catalog(g, options);
  // Count is approximate per contig, but close for one contig.
  EXPECT_NEAR(static_cast<double>(catalog.size()), 50.0, 5.0);
}

TEST(CatalogGen, RefAllelesMatchGenome) {
  const Genome g = generate_reference(small_ref_options());
  CatalogGenOptions options;
  options.count = 100;
  for (const auto& entry : generate_catalog(g, options)) {
    EXPECT_EQ(entry.ref, g.at(g.global_pos(0, entry.position)));
    EXPECT_NE(entry.ref, entry.alt);
    EXPECT_LT(entry.alt, 4);
  }
}

TEST(CatalogGen, SitesRoughlyEvenlySpaced) {
  const Genome g = generate_reference(small_ref_options());
  CatalogGenOptions options;
  options.count = 100;
  options.jitter = 0.0;
  const auto catalog = generate_catalog(g, options);
  ASSERT_GT(catalog.size(), 10u);
  const double spacing = static_cast<double>(g.num_bases()) /
                         static_cast<double>(catalog.size());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    const double gap = static_cast<double>(catalog[i].position) -
                       static_cast<double>(catalog[i - 1].position);
    EXPECT_NEAR(gap, spacing, spacing * 0.5) << "i=" << i;
  }
}

TEST(CatalogGen, TransitionRatioApproximatelyTwoToOne) {
  auto ref_options = small_ref_options();
  ref_options.length = 400000;
  const Genome g = generate_reference(ref_options);
  CatalogGenOptions options;
  options.count = 2000;
  int transitions = 0, total = 0;
  for (const auto& entry : generate_catalog(g, options)) {
    transitions += is_transition(entry.ref, entry.alt) ? 1 : 0;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(transitions) / total, 2.0 / 3.0, 0.05);
}

TEST(CatalogGen, HetFractionHonored) {
  const Genome g = generate_reference(small_ref_options());
  CatalogGenOptions options;
  options.count = 400;
  options.het_fraction = 0.5;
  int het = 0, total = 0;
  for (const auto& entry : generate_catalog(g, options)) {
    het += entry.zygosity == Zygosity::kHet ? 1 : 0;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(het) / total, 0.5, 0.12);
}

TEST(CatalogGen, NeverOnNPositions) {
  auto ref_options = small_ref_options();
  ref_options.n_fraction = 0.05;
  ref_options.n_run = 200;
  const Genome g = generate_reference(ref_options);
  CatalogGenOptions options;
  options.count = 300;
  for (const auto& entry : generate_catalog(g, options)) {
    EXPECT_LT(g.at(g.global_pos(0, entry.position)), 4);
  }
}

// ---------------------------------------------------------------------------
// Mutation

TEST(Mutator, AppliesEverySite) {
  const Genome ref = generate_reference(small_ref_options());
  CatalogGenOptions options;
  options.count = 80;
  const auto catalog = generate_catalog(ref, options);
  const Genome mutated = apply_catalog(ref, catalog);

  ASSERT_EQ(mutated.num_bases(), ref.num_bases());
  std::set<std::uint64_t> sites;
  for (const auto& entry : catalog) {
    sites.insert(entry.position);
    EXPECT_EQ(mutated.at(mutated.global_pos(0, entry.position)), entry.alt);
  }
  // Nothing else changed.
  for (GenomePos pos = 0; pos < ref.num_bases(); ++pos) {
    if (!sites.count(pos)) {
      ASSERT_EQ(mutated.at(pos), ref.at(pos)) << pos;
    }
  }
}

TEST(Mutator, RejectsMismatchedRef) {
  const Genome ref = generate_reference(small_ref_options());
  SnpCatalog catalog;
  CatalogEntry entry;
  entry.contig = "chrSim";
  entry.position = 10;
  entry.ref = static_cast<std::uint8_t>((ref.at(10) + 1) % 4);  // wrong
  entry.alt = static_cast<std::uint8_t>((ref.at(10) + 2) % 4);
  catalog.push_back(entry);
  EXPECT_THROW(apply_catalog(ref, catalog), ConfigError);
}

TEST(Mutator, RejectsUnknownContig) {
  const Genome ref = generate_reference(small_ref_options());
  SnpCatalog catalog;
  catalog.push_back({"nope", 1, 0, 1, Zygosity::kHom});
  EXPECT_THROW(apply_catalog(ref, catalog), ConfigError);
}

TEST(Mutator, DiploidHomOnBothHaplotypes) {
  const Genome ref = generate_reference(small_ref_options());
  CatalogGenOptions options;
  options.count = 60;
  options.het_fraction = 0.5;
  const auto catalog = generate_catalog(ref, options);
  const auto individual = apply_catalog_diploid(ref, catalog);

  for (const auto& entry : catalog) {
    const auto pos = ref.global_pos(0, entry.position);
    const bool in1 = individual.hap1.at(pos) == entry.alt;
    const bool in2 = individual.hap2.at(pos) == entry.alt;
    if (entry.zygosity == Zygosity::kHom) {
      EXPECT_TRUE(in1 && in2);
    } else {
      EXPECT_TRUE(in1 != in2);  // exactly one haplotype carries the alt
      EXPECT_TRUE((individual.hap1.at(pos) == entry.ref) ||
                  (individual.hap2.at(pos) == entry.ref));
    }
  }
}

// ---------------------------------------------------------------------------
// Read simulation

TEST(ReadSim, HitsTargetCoverage) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.coverage = 8.0;
  options.read_length = 50;
  const auto reads = simulate_reads(g, options);
  const double achieved = static_cast<double>(reads.size()) * 50.0 /
                          static_cast<double>(g.num_bases());
  EXPECT_NEAR(achieved, 8.0, 0.5);
}

TEST(ReadSim, ReadsMatchOriginWithFewErrors) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.coverage = 2.0;
  options.read_length = 62;
  options.indel_rate = 0.0;
  const auto reads = simulate_reads(g, options);
  ASSERT_FALSE(reads.empty());

  double total_mismatch = 0.0;
  for (const auto& sim : reads) {
    ASSERT_EQ(sim.read.length(), 62u);
    auto tmpl = std::vector<std::uint8_t>(62);
    for (std::size_t i = 0; i < 62; ++i) {
      tmpl[i] = g.at(g.global_pos(sim.contig, sim.origin + i));
    }
    if (sim.reverse) tmpl = reverse_complement(tmpl);
    int mismatches = 0;
    for (std::size_t i = 0; i < 62; ++i) {
      mismatches += tmpl[i] != sim.read.bases[i] ? 1 : 0;
    }
    total_mismatch += mismatches;
    // Error rate tops out ~2%; 15 mismatches in 62 bases would be absurd.
    EXPECT_LT(mismatches, 15);
  }
  // Mean mismatch rate should be near the configured ramp average (~1.1%).
  const double rate = total_mismatch / (62.0 * static_cast<double>(reads.size()));
  EXPECT_NEAR(rate, 0.011, 0.006);
}

TEST(ReadSim, QualityTracksErrorRamp) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.coverage = 2.0;
  options.read_length = 60;
  const auto reads = simulate_reads(g, options);
  ASSERT_FALSE(reads.empty());
  // Average quality near the 5' end exceeds the 3' end.
  double q_head = 0.0, q_tail = 0.0;
  for (const auto& sim : reads) {
    q_head += sim.read.quals.front();
    q_tail += sim.read.quals.back();
  }
  EXPECT_GT(q_head, q_tail);
}

TEST(ReadSim, BothStrandsSampled) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.coverage = 2.0;
  const auto reads = simulate_reads(g, options);
  int reverse = 0;
  for (const auto& sim : reads) reverse += sim.reverse ? 1 : 0;
  const double fraction = static_cast<double>(reverse) / reads.size();
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(ReadSim, NamesEncodeOrigin) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.coverage = 0.5;
  const auto reads = simulate_reads(g, options);
  ASSERT_FALSE(reads.empty());
  const auto& sim = reads.front();
  const std::string expected_prefix =
      "chrSim:" + std::to_string(sim.origin) + ":" +
      (sim.reverse ? "-" : "+");
  EXPECT_EQ(sim.read.name.rfind(expected_prefix, 0), 0u) << sim.read.name;
}

TEST(ReadSim, DiploidDrawsFromBothHaplotypes) {
  const Genome ref = generate_reference(small_ref_options());
  CatalogGenOptions catalog_options;
  catalog_options.count = 40;
  catalog_options.het_fraction = 1.0;  // all het
  const auto catalog = generate_catalog(ref, catalog_options);
  const auto individual = apply_catalog_diploid(ref, catalog);
  ReadSimOptions options;
  options.coverage = 6.0;
  const auto reads =
      simulate_reads_diploid(individual.hap1, individual.hap2, options);
  const double achieved = static_cast<double>(reads.size()) * 62.0 /
                          static_cast<double>(ref.num_bases());
  EXPECT_NEAR(achieved, 6.0, 0.5);
}

TEST(ReadSim, StripMetadata) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.coverage = 0.5;
  const auto sims = simulate_reads(g, options);
  const auto reads = strip_metadata(sims);
  ASSERT_EQ(reads.size(), sims.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(reads[i].name, sims[i].read.name);
    EXPECT_EQ(reads[i].bases, sims[i].read.bases);
  }
}

TEST(ReadSim, RejectsBadOptions) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.read_length = 4;
  EXPECT_THROW(simulate_reads(g, options), ConfigError);
  options = ReadSimOptions{};
  options.coverage = 0.0;
  EXPECT_THROW(simulate_reads(g, options), ConfigError);
}

TEST(ReadSim, DeterministicForSeed) {
  const Genome g = generate_reference(small_ref_options());
  ReadSimOptions options;
  options.coverage = 1.0;
  const auto a = simulate_reads(g, options);
  const auto b = simulate_reads(g, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].read.bases, b[i].read.bases);
    ASSERT_EQ(a[i].read.quals, b[i].read.quals);
  }
}

}  // namespace
}  // namespace gnumap

// Tests for the gnumap::obs tracing + metrics subsystem: recorder
// correctness across threads, histogram bucket semantics, exporter
// well-formedness (parsed by a minimal in-test JSON parser), the
// disabled-mode overhead bound, and the no-observer-effect guarantee
// (byte-identical SNP output with tracing on vs. off in both DistModes).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gnumap/core/dist_modes.hpp"
#include "gnumap/io/snp_writer.hpp"
#include "gnumap/obs/metrics.hpp"
#include "gnumap/obs/trace.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/timer.hpp"

namespace gnumap {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: enough of RFC 8259 to verify exporter output in-test.

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json& at(const std::string& key) const {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      ADD_FAILURE() << "missing JSON key: " << key;
      static const Json null;
      return null;
    }
    return it->second;
  }
  bool has(const std::string& key) const { return fields.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (at_ != text_.size()) fail("trailing characters");
    return v;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why + " at offset " + std::to_string(at_);
    }
    at_ = text_.size();  // stop consuming
  }
  void skip_ws() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }
  char peek() {
    skip_ws();
    if (at_ >= text_.size()) {
      fail("unexpected end");
      return '\0';
    }
    return text_[at_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }
  Json object() {
    Json v;
    v.kind = Json::kObject;
    expect('{');
    if (peek() == '}') { ++at_; return v; }
    for (;;) {
      Json key = string_value();
      expect(':');
      v.fields[key.text] = value();
      if (peek() == ',') { ++at_; continue; }
      expect('}');
      return v;
    }
  }
  Json array() {
    Json v;
    v.kind = Json::kArray;
    expect('[');
    if (peek() == ']') { ++at_; return v; }
    for (;;) {
      v.items.push_back(value());
      if (peek() == ',') { ++at_; continue; }
      expect(']');
      return v;
    }
  }
  Json string_value() {
    Json v;
    v.kind = Json::kString;
    expect('"');
    while (at_ < text_.size() && text_[at_] != '"') {
      char c = text_[at_++];
      if (c == '\\') {
        if (at_ >= text_.size()) { fail("bad escape"); return v; }
        const char esc = text_[at_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (at_ + 4 > text_.size()) { fail("bad \\u"); return v; }
            at_ += 4;
            c = '?';  // fidelity not needed for these tests
            break;
          default: fail("bad escape"); return v;
        }
      }
      v.text += c;
    }
    expect('"');
    return v;
  }
  Json boolean() {
    Json v;
    v.kind = Json::kBool;
    if (text_.compare(at_, 4, "true") == 0) {
      v.boolean = true;
      at_ += 4;
    } else if (text_.compare(at_, 5, "false") == 0) {
      at_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }
  Json null() {
    Json v;
    if (text_.compare(at_, 4, "null") == 0) at_ += 4;
    else fail("bad literal");
    return v;
  }
  Json number() {
    Json v;
    v.kind = Json::kNumber;
    const std::size_t start = at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
            std::string("+-.eE").find(text_[at_]) != std::string::npos)) {
      ++at_;
    }
    try {
      v.number = std::stod(text_.substr(start, at_ - start));
    } catch (...) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t at_ = 0;
  bool ok_ = true;
  std::string error_;
};

Json parse_json_or_fail(const std::string& text) {
  JsonParser parser(text);
  Json v = parser.parse();
  EXPECT_TRUE(parser.ok()) << parser.error();
  return v;
}

/// Every test starts from a clean slate; tracing is left disabled.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::reset_trace();
    obs::registry().reset();
  }
  void TearDown() override { obs::set_trace_enabled(false); }
};

std::string trace_json() {
  std::ostringstream out;
  obs::write_chrome_trace(out);
  return out.str();
}

// ---------------------------------------------------------------------------
// Recorder.

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  { GNUMAP_TRACE_SPAN("quiet", "test"); }
  const Json t = parse_json_or_fail(trace_json());
  for (const auto& e : t.at("traceEvents").items) {
    EXPECT_NE(e.at("ph").text, "X");
  }
}

TEST_F(ObsTest, SpanNestingWithinAThread) {
  obs::set_trace_enabled(true);
  {
    GNUMAP_TRACE_SPAN("outer", "test");
    { GNUMAP_TRACE_SPAN("inner", "test"); }
  }
  const Json t = parse_json_or_fail(trace_json());
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  for (const auto& e : t.at("traceEvents").items) {
    if (e.at("ph").text != "X") continue;
    if (e.at("name").text == "outer") outer = &e;
    if (e.at("name").text == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span completes first but nests inside the outer interval on
  // the same track.
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  EXPECT_LE(outer->at("ts").number, inner->at("ts").number);
  EXPECT_GE(outer->at("ts").number + outer->at("dur").number,
            inner->at("ts").number + inner->at("dur").number);
}

TEST_F(ObsTest, ThreadsRecordOntoTheirOwnNamedTracks) {
  obs::set_trace_enabled(true);
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([i] {
      obs::set_thread_track(i, "worker " + std::to_string(i));
      GNUMAP_TRACE_SPAN("work", "test");
    });
  }
  for (auto& t : threads) t.join();

  // Buffers outlive the joined threads; the export must show all three
  // named tracks, each carrying its own span.
  const Json t = parse_json_or_fail(trace_json());
  std::map<double, std::string> track_names;
  std::set<double> span_tracks;
  for (const auto& e : t.at("traceEvents").items) {
    if (e.at("ph").text == "M" && e.at("name").text == "thread_name") {
      track_names[e.at("tid").number] = e.at("args").at("name").text;
    }
    if (e.at("ph").text == "X" && e.at("name").text == "work") {
      span_tracks.insert(e.at("tid").number);
    }
  }
  EXPECT_EQ(span_tracks.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(span_tracks.count(i)) << "no span on track " << i;
    EXPECT_EQ(track_names[i], "worker " + std::to_string(i));
  }
}

TEST_F(ObsTest, SpanArgsAndInstantsSurviveExport) {
  obs::set_trace_enabled(true);
  {
    obs::TraceSpan span("send", "comm", "bytes", 4096.0, "peer", 2.0);
  }
  obs::record_instant("crash", "fault", "step", 17.0);
  const Json t = parse_json_or_fail(trace_json());
  bool saw_span = false, saw_instant = false;
  for (const auto& e : t.at("traceEvents").items) {
    if (e.at("ph").text == "X" && e.at("name").text == "send") {
      saw_span = true;
      EXPECT_EQ(e.at("args").at("bytes").number, 4096.0);
      EXPECT_EQ(e.at("args").at("peer").number, 2.0);
    }
    if (e.at("ph").text == "i" && e.at("name").text == "crash") {
      saw_instant = true;
      EXPECT_EQ(e.at("args").at("step").number, 17.0);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST_F(ObsTest, MetadataReachesOtherData) {
  obs::set_trace_metadata("dist_mode", "read_partition");
  const Json t = parse_json_or_fail(trace_json());
  EXPECT_EQ(t.at("otherData").at("dist_mode").text, "read_partition");
  // Build identity is always present.
  EXPECT_TRUE(t.at("otherData").has("git_sha"));
  EXPECT_TRUE(t.at("otherData").has("host"));
}

TEST_F(ObsTest, DisabledSpanOverheadIsBounded) {
  // The disabled fast path is one relaxed load + branch, and tagging the
  // span with a request trace id (the serve hot path does this for every
  // connection) must stay on it.  Best-of-several trials to shrug off
  // scheduler noise on a busy host; the bound is ~10x the expected cost
  // so a regression to lock/allocate shows clearly.
  constexpr int kTrials = 7;
  constexpr int kSpans = 200000;
  double best_ns = 1e9;
  for (int trial = 0; trial < kTrials; ++trial) {
    Timer timer;
    for (int i = 0; i < kSpans; ++i) {
      obs::TraceSpan span("hot", "test");
      span.set_id(0xDEADBEEFCAFEF00Dull + static_cast<std::uint64_t>(i));
    }
    best_ns = std::min(best_ns, timer.seconds() * 1e9 / kSpans);
  }
  EXPECT_LT(best_ns, 25.0) << "disabled tagged span costs " << best_ns
                           << " ns";
}

// ---------------------------------------------------------------------------
// Metrics.

TEST_F(ObsTest, HistogramBucketBoundaries) {
  obs::Histogram& h = obs::registry().histogram(
      "test_bounds_seconds", {0.001, 0.01, 0.1}, "bucket boundary test");
  h.observe(0.0005);  // below first bound -> bucket 0
  h.observe(0.001);   // exactly on a bound lands in that bound's bucket
  h.observe(0.0011);  // just above -> bucket 1
  h.observe(0.1);     // exactly the last bound -> bucket 2
  h.observe(5.0);     // above every bound -> +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 0.0005 + 0.001 + 0.0011 + 0.1 + 5.0, 1e-12);
}

TEST_F(ObsTest, MetricsJsonIsWellFormed) {
  obs::registry().counter("test_events_total", "help text").inc(3);
  obs::registry().gauge("test_level").set(0.5);
  obs::registry()
      .histogram("test_wait_seconds", {0.01, 0.1}, "with \"quotes\"")
      .observe(0.05);

  std::ostringstream out;
  obs::registry().write_json(out);
  const Json m = parse_json_or_fail(out.str());

  // Context block shares the bench-JSON identity schema.
  const Json& context = m.at("context");
  EXPECT_TRUE(context.has("host_name"));
  EXPECT_TRUE(context.has("num_cpus"));
  EXPECT_TRUE(context.has("git_sha"));
  EXPECT_TRUE(context.has("library_build_type"));

  const Json& metrics = m.at("metrics");
  EXPECT_EQ(metrics.at("test_events_total").at("value").number, 3.0);
  EXPECT_EQ(metrics.at("test_level").at("value").number, 0.5);
  const Json& hist = metrics.at("test_wait_seconds");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_NEAR(hist.at("sum").number, 0.05, 1e-12);
}

TEST_F(ObsTest, PrometheusExportHasCumulativeBuckets) {
  obs::Histogram& h = obs::registry().histogram(
      "test_lat_seconds", {0.001, 0.01}, "latency");
  h.observe(0.0005);
  h.observe(0.005);
  h.observe(1.0);
  obs::registry().counter("test_rank_total{rank=\"2\"}").inc(7);

  std::ostringstream out;
  obs::registry().write_prometheus(out);
  const std::string text = out.str();
  // Cumulative le buckets: 1, 2, 3(+Inf); count and sum lines present.
  EXPECT_NE(text.find("test_lat_seconds_bucket{le=\"0.001\"} 1"),
            std::string::npos) << text;
  EXPECT_NE(text.find("test_lat_seconds_bucket{le=\"0.01\"} 2"),
            std::string::npos) << text;
  EXPECT_NE(text.find("test_lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos) << text;
  EXPECT_NE(text.find("test_lat_seconds_count 3"), std::string::npos);
  // Labelled counter keeps its baked-in label.
  EXPECT_NE(text.find("test_rank_total{rank=\"2\"} 7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// No observer effect: tracing must not change SNP output.

struct Workload {
  Genome ref;
  std::vector<Read> reads;
};

Workload make_workload() {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  Workload w;
  w.ref = generate_reference(ref_options);
  CatalogGenOptions catalog_options;
  catalog_options.count = 15;
  const auto catalog = generate_catalog(w.ref, catalog_options);
  const Genome individual = apply_catalog(w.ref, catalog);
  ReadSimOptions sim_options;
  sim_options.coverage = 10.0;
  w.reads = strip_metadata(simulate_reads(individual, sim_options));
  return w;
}

std::string calls_tsv(const std::vector<SnpCall>& calls) {
  std::ostringstream out;
  write_snps_tsv(out, calls);
  return out.str();
}

class TracingObserverEffect : public ObsTest,
                              public ::testing::WithParamInterface<DistMode> {
};

TEST_P(TracingObserverEffect, SnpOutputByteIdenticalTracingOnOff) {
  const Workload w = make_workload();
  PipelineConfig config;
  config.index.k = 9;
  DistOptions options;
  options.ranks = 3;
  options.mode = GetParam();
  options.serialize_compute = false;

  const auto baseline = run_distributed(w.ref, w.reads, config, options);
  obs::set_trace_enabled(true);
  const auto traced = run_distributed(w.ref, w.reads, config, options);
  obs::set_trace_enabled(false);

  EXPECT_EQ(calls_tsv(baseline.calls), calls_tsv(traced.calls));
}

INSTANTIATE_TEST_SUITE_P(Modes, TracingObserverEffect,
                         ::testing::Values(DistMode::kReadPartition,
                                           DistMode::kGenomePartition));

// ---------------------------------------------------------------------------
// End-to-end: a traced 4-rank distributed run produces per-rank tracks with
// comm, compute, and checkpoint spans (the Perfetto acceptance shape).

TEST_F(ObsTest, DistributedTraceHasPerRankCommComputeCheckpointSpans) {
  const Workload w = make_workload();
  PipelineConfig config;
  config.index.k = 9;
  DistOptions options;
  options.ranks = 4;
  options.mode = DistMode::kReadPartition;
  options.serialize_compute = false;
  // A benign plan (slow factor 1.0) switches fault_mode on — enabling
  // checkpoints — without perturbing the run.
  options.faults = FaultPlan().slow(0, 1.0);
  options.checkpoint_interval = 50;

  obs::set_trace_enabled(true);
  const auto result = run_distributed(w.ref, w.reads, config, options);
  obs::set_trace_enabled(false);
  ASSERT_FALSE(result.calls.empty());

  const Json t = parse_json_or_fail(trace_json());
  std::map<double, std::string> track_names;
  std::map<double, std::set<std::string>> categories_by_track;
  for (const auto& e : t.at("traceEvents").items) {
    if (e.at("ph").text == "M" && e.at("name").text == "thread_name") {
      track_names[e.at("tid").number] = e.at("args").at("name").text;
    }
    if (e.at("ph").text == "X") {
      categories_by_track[e.at("tid").number].insert(e.at("cat").text);
    }
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(track_names[r], "rank " + std::to_string(r));
    const auto& cats = categories_by_track[r];
    EXPECT_TRUE(cats.count("comm")) << "rank " << r << " has no comm spans";
    EXPECT_TRUE(cats.count("compute"))
        << "rank " << r << " has no compute spans";
    EXPECT_TRUE(cats.count("ckpt"))
        << "rank " << r << " has no checkpoint spans";
  }
  EXPECT_EQ(t.at("otherData").at("ranks").text, "4");
  EXPECT_EQ(t.at("otherData").at("dist_mode").text, "read_partition");
}

}  // namespace
}  // namespace gnumap

// FP32 lane mode (docs/KERNELS.md §8): accuracy model and the recompute
// guard that keeps SNP-visible decisions identical to the fp64 pipeline.
//
// Three layers are pinned down here:
//   1. Kernel accuracy — the fp32 engine's log-likelihoods track the
//      scalar-double oracle within a small absolute bound across the
//      paper's read-length range (36..150 bp), and the fp32 kernels are
//      bit-identical *across dispatch levels* (each lane runs the same
//      float expression tree at every width).
//   2. The recompute-margin rule in ReadMapper: a huge margin recomputes
//      every scored read and reproduces the fp64 site lists bit for bit;
//      an empty candidate set is a structural verdict and is never
//      recomputed; margin boundary behavior matches fp32_borderline's
//      contract.
//   3. End to end: on a simulated SNP catalog, the called variant set
//      (contig, position, alleles) with phmm_precision = kSingle equals
//      the default fp64 pipeline's calls.
//
// These tests set Precision explicitly (never kAuto), so they are stable
// under the CI fp32 leg's GNUMAP_PHMM_FP32=1 environment.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "gnumap/core/pipeline.hpp"
#include "gnumap/core/read_mapper.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/phmm/batched.hpp"
#include "gnumap/phmm/forward_backward.hpp"
#include "gnumap/phmm/params.hpp"
#include "gnumap/phmm/pwm.hpp"
#include "gnumap/sim/catalog_gen.hpp"
#include "gnumap/sim/mutator.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/rng.hpp"

namespace gnumap {
namespace {

using phmm::BatchedForward;
using phmm::EngineOptions;
using phmm::Precision;
using phmm::SimdLevel;

Read make_read(const std::string& seq, std::uint8_t qual = 35) {
  Read read;
  read.name = "r";
  read.bases = encode_sequence(seq);
  read.quals.assign(read.bases.size(), qual);
  return read;
}

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back("ACGT"[rng.next_below(4)]);
  }
  return s;
}

struct Problem {
  std::vector<std::uint8_t> window;
  Pwm pwm;
};

Problem make_problem(Rng& rng, std::size_t read_len, std::size_t window_len) {
  Problem p;
  const std::string win_seq = random_seq(rng, window_len);
  p.window = encode_sequence(win_seq);
  const std::size_t offset = rng.next_below(window_len - read_len + 1);
  std::string read_seq = win_seq.substr(offset, read_len);
  for (char& ch : read_seq) {
    if (rng.bernoulli(0.05)) ch = "ACGT"[rng.next_below(4)];
  }
  p.pwm = Pwm::from_read(make_read(read_seq));
  return p;
}

std::vector<SimdLevel> levels_to_test() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (phmm::resolve_simd_level(SimdLevel::kSse2) == SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (phmm::resolve_simd_level(SimdLevel::kAvx2) == SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

/// Runs `problems` through the fp32 engine at `level`; returns per-task
/// log-likelihoods (quiet NaN for tasks with no surviving path).
std::vector<double> fp32_scores(const std::vector<Problem>& problems,
                                SimdLevel level, BoundaryMode mode) {
  BatchedForward batch((PhmmParams()), mode,
                       EngineOptions{.simd = level,
                                     .precision = Precision::kSingle});
  EXPECT_EQ(batch.precision(), Precision::kSingle);
  for (std::size_t t = 0; t < problems.size(); ++t) {
    batch.add(problems[t].pwm, problems[t].window, t);
  }
  batch.run();
  std::vector<double> scores(problems.size(),
                             std::numeric_limits<double>::quiet_NaN());
  for (std::size_t t = 0; t < problems.size(); ++t) {
    if (batch.outcome(t).ok) scores[t] = batch.outcome(t).log_likelihood;
  }
  return scores;
}

// ---------------------------------------------------------------------------
// 1. Kernel accuracy

// Property test: across the paper's read-length range the fp32 score
// tracks the double oracle.  The per-row rescale keeps every lane value in
// [0, 1], so the error is additive in log space: each row contributes
// O(m * eps_f32) to log_scale, bounding the total at a few 1e-3 even for
// 150 bp reads (KERNELS.md §8 derives the bound).  We also require that
// fp32 is *not* bit-equal overall — otherwise this test would silently
// pass with the fp32 path unplugged.
TEST(PhmmFp32, ScoreDeltaBoundedAcrossReadLengths) {
  Rng rng(20260809);
  const PhmmParams params;
  for (const BoundaryMode mode :
       {BoundaryMode::kSemiGlobal, BoundaryMode::kGlobal}) {
    const PairHmm oracle(params, mode);
    double max_delta = 0.0;
    for (const std::size_t read_len : {36u, 62u, 100u, 124u, 150u}) {
      std::vector<Problem> problems;
      for (std::size_t i = 0; i < 12; ++i) {
        problems.push_back(make_problem(rng, read_len, read_len + 24));
      }
      for (const SimdLevel level : levels_to_test()) {
        const auto scores = fp32_scores(problems, level, mode);
        AlignmentMatrices mats;
        for (std::size_t t = 0; t < problems.size(); ++t) {
          const bool ok =
              oracle.align(problems[t].pwm, problems[t].window, mats);
          ASSERT_EQ(ok, !std::isnan(scores[t])) << "task " << t;
          if (!ok) continue;
          const double delta = std::abs(scores[t] - mats.log_likelihood);
          EXPECT_LE(delta, 0.02)
              << "read_len " << read_len << " level "
              << phmm::simd_level_name(level) << " task " << t << ": fp32 "
              << scores[t] << " vs fp64 " << mats.log_likelihood;
          max_delta = std::max(max_delta, delta);
        }
      }
    }
    // The fp32 lanes really ran in single precision.
    EXPECT_GT(max_delta, 0.0);
  }
}

// The fp32 kernels replicate one float expression tree per lane at every
// width (no FMA, no reassociation), so SSE2/AVX2 fp32 results must equal
// scalar fp32 bit for bit — the same contract the fp64 levels honor.
TEST(PhmmFp32, BitIdenticalAcrossLevels) {
  Rng rng(99);
  std::vector<Problem> problems;
  for (std::size_t i = 0; i < 24; ++i) {
    // Mixed shapes so pack tails and masked lanes are exercised.
    const std::size_t read_len = 30 + rng.next_below(12);
    problems.push_back(make_problem(rng, read_len, read_len + 18));
  }
  for (const BoundaryMode mode :
       {BoundaryMode::kSemiGlobal, BoundaryMode::kGlobal}) {
    const auto reference = fp32_scores(problems, SimdLevel::kScalar, mode);
    for (const SimdLevel level : levels_to_test()) {
      if (level == SimdLevel::kScalar) continue;
      const auto scores = fp32_scores(problems, level, mode);
      for (std::size_t t = 0; t < problems.size(); ++t) {
        if (std::isnan(reference[t])) {
          EXPECT_TRUE(std::isnan(scores[t])) << "task " << t;
        } else {
          EXPECT_EQ(scores[t], reference[t])
              << "task " << t << " at " << phmm::simd_level_name(level);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. The recompute-margin rule

Genome fp32_test_reference(std::size_t length, std::uint64_t seed = 99) {
  ReferenceGenOptions options;
  options.length = length;
  options.repeat_fraction = 0.0;
  options.n_fraction = 0.0;
  options.seed = seed;
  return generate_reference(options);
}

PipelineConfig fp32_config(Precision precision, double margin) {
  PipelineConfig config;
  config.index.k = 9;
  // Explicit, never kAuto: the CI fp32 leg runs with GNUMAP_PHMM_FP32=1.
  config.phmm_precision = precision;
  config.phmm_fp32_margin = margin;
  return config;
}

std::vector<Read> simulated_reads(const Genome& g, double coverage = 2.0) {
  ReadSimOptions sim_options;
  sim_options.coverage = coverage;
  sim_options.indel_rate = 0.0;
  return strip_metadata(simulate_reads(g, sim_options));
}

// With an unbounded margin every read that scored at least one candidate
// is borderline, so the whole batch is re-scored by the double oracle and
// the site lists — scores, weights, contributions — equal the fp64 path's
// bit for bit.
TEST(PhmmFp32, HugeMarginReproducesFp64SitesBitwise) {
  const Genome g = fp32_test_reference(20000);
  const auto reads = simulated_reads(g);
  ASSERT_GT(reads.size(), 20u);

  const PipelineConfig config64 = fp32_config(Precision::kDouble, 0.5);
  const PipelineConfig config32 = fp32_config(Precision::kSingle, 1e9);
  const HashIndex index64(g, config64.index);
  const HashIndex index32(g, config32.index);
  const ReadMapper mapper64(g, index64, config64);
  const ReadMapper mapper32(g, index32, config32);
  ASSERT_EQ(mapper32.phmm_precision(), Precision::kSingle);

  MapperWorkspace ws64, ws32;
  MapStats stats64, stats32;
  const auto scored64 = mapper64.score_reads(reads, ws64, stats64);
  const auto scored32 = mapper32.score_reads(reads, ws32, stats32);

  EXPECT_EQ(stats64.fp32_recomputed_reads, 0u);
  EXPECT_GT(stats32.fp32_recomputed_reads, 0u);
  ASSERT_EQ(scored64.size(), scored32.size());
  for (std::size_t r = 0; r < scored64.size(); ++r) {
    ASSERT_EQ(scored64[r].size(), scored32[r].size()) << "read " << r;
    for (std::size_t s = 0; s < scored64[r].size(); ++s) {
      const ScoredSite& a = scored64[r][s];
      const ScoredSite& b = scored32[r][s];
      EXPECT_EQ(a.window_begin, b.window_begin);
      EXPECT_EQ(a.log_likelihood, b.log_likelihood);  // bitwise: recomputed
      EXPECT_EQ(a.weight, b.weight);
      EXPECT_EQ(a.reverse, b.reverse);
    }
  }
}

// An empty candidate set is a structural zero, not a rounding artifact:
// even an unbounded margin must not trigger a recompute.  An empty
// diagonal partition excludes every candidate, so no read can score.
TEST(PhmmFp32, StructuralZeroIsNeverBorderline) {
  const Genome g = fp32_test_reference(20000);
  const auto reads = simulated_reads(g);

  const PipelineConfig config = fp32_config(Precision::kSingle, 1e9);
  const HashIndex index(g, config.index);
  const ReadMapper mapper(g, index, config);

  MapperWorkspace ws;
  MapStats stats;
  // A partition entirely past the genome end excludes every candidate
  // diagonal, so no read can score a single site.
  const GenomePos beyond = g.num_bases() + 1000;
  const auto scored = mapper.score_reads(reads, ws, stats,
                                         /*diagonal_begin=*/beyond,
                                         /*diagonal_end=*/beyond + 1);
  for (const auto& sites : scored) EXPECT_TRUE(sites.empty());
  EXPECT_EQ(stats.fp32_recomputed_reads, 0u);
}

// Margin 0 still recomputes a read whose decision lands *exactly* on a
// threshold (the rule is |delta| <= margin), but clean simulated reads sit
// far from both thresholds, so nothing is borderline — and the mapping
// decisions still match fp64: which reads mapped, and which sites
// survived the posterior prune.
TEST(PhmmFp32, ZeroMarginDecisionsMatchFp64OnCleanReads) {
  const Genome g = fp32_test_reference(20000, 7);
  const auto reads = simulated_reads(g);
  ASSERT_GT(reads.size(), 20u);

  const PipelineConfig config64 = fp32_config(Precision::kDouble, 0.0);
  const PipelineConfig config32 = fp32_config(Precision::kSingle, 0.0);
  const HashIndex index(g, config64.index);
  const ReadMapper mapper64(g, index, config64);
  const ReadMapper mapper32(g, index, config32);

  MapperWorkspace ws64, ws32;
  MapStats stats64, stats32;
  const auto scored64 = mapper64.score_reads(reads, ws64, stats64);
  const auto scored32 = mapper32.score_reads(reads, ws32, stats32);

  ASSERT_EQ(scored64.size(), scored32.size());
  for (std::size_t r = 0; r < scored64.size(); ++r) {
    ASSERT_EQ(scored64[r].size(), scored32[r].size()) << "read " << r;
    for (std::size_t s = 0; s < scored64[r].size(); ++s) {
      EXPECT_EQ(scored64[r][s].window_begin, scored32[r][s].window_begin);
      // Scores carry fp32 noise but stay close.
      EXPECT_NEAR(scored64[r][s].log_likelihood,
                  scored32[r][s].log_likelihood, 0.02);
    }
  }
}

// ---------------------------------------------------------------------------
// 3. End-to-end SNP regression

// The headline contract of --phmm-fp32: on a simulated catalog the called
// variant set — contig, position, and genotype — is unchanged from the
// default fp64 pipeline.  Per-site statistics (coverage, LRT, p-value)
// may carry fp32 noise from off-margin read weights; the *decisions* may
// not.
TEST(PhmmFp32, SnpCallsMatchFp64PipelineOnSimCatalog) {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  ref_options.n_fraction = 0.0;
  ref_options.seed = 4242;
  const Genome reference = generate_reference(ref_options);

  CatalogGenOptions catalog_options;
  catalog_options.count = 20;
  const auto catalog = generate_catalog(reference, catalog_options);
  const Genome individual = apply_catalog(reference, catalog);

  ReadSimOptions sim_options;
  sim_options.coverage = 12.0;
  const auto reads = strip_metadata(simulate_reads(individual, sim_options));

  const PipelineConfig config64 = fp32_config(Precision::kDouble, 0.5);
  const PipelineConfig config32 = fp32_config(Precision::kSingle, 0.5);
  const auto result64 = run_pipeline(reference, reads, config64);
  const auto result32 = run_pipeline(reference, reads, config32);

  // The catalog is actually being exercised, not trivially empty.
  ASSERT_GT(result64.calls.size(), 10u);
  ASSERT_EQ(result64.calls.size(), result32.calls.size());
  for (std::size_t i = 0; i < result64.calls.size(); ++i) {
    const SnpCall& a = result64.calls[i];
    const SnpCall& b = result32.calls[i];
    EXPECT_EQ(a.contig, b.contig);
    EXPECT_EQ(a.position, b.position);
    EXPECT_EQ(a.ref, b.ref);
    EXPECT_EQ(a.allele1, b.allele1);
    EXPECT_EQ(a.allele2, b.allele2);
  }
}

}  // namespace
}  // namespace gnumap

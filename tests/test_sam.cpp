// Tests for SAM output: writer formatting and the mapper -> SAM export.
#include <gtest/gtest.h>

#include <sstream>

#include "gnumap/core/pipeline.hpp"
#include "gnumap/core/sam_export.hpp"
#include "gnumap/genome/sequence.hpp"
#include "gnumap/io/sam.hpp"
#include "gnumap/sim/read_sim.hpp"
#include "gnumap/sim/reference_gen.hpp"
#include "gnumap/util/string_util.hpp"

namespace gnumap {
namespace {

Genome two_contig_genome() {
  Genome g;
  g.add_contig("chrA", "ACGTACGTACGTACGTACGT");
  g.add_contig("chrB", "TTTTGGGGCCCCAAAA");
  return g;
}

TEST(SamWriter, HeaderListsContigs) {
  std::ostringstream out;
  write_sam_header(out, two_contig_genome());
  const std::string text = out.str();
  EXPECT_NE(text.find("@HD\tVN:1.6"), std::string::npos);
  EXPECT_NE(text.find("@SQ\tSN:chrA\tLN:20"), std::string::npos);
  EXPECT_NE(text.find("@SQ\tSN:chrB\tLN:16"), std::string::npos);
  EXPECT_NE(text.find("@PG\tID:gnumap-snp"), std::string::npos);
}

TEST(SamWriter, MappedRecordFields) {
  const Genome g = two_contig_genome();
  SamRecord record;
  record.qname = "read1";
  record.flags = SamRecord::kReverse;
  record.contig_id = 1;
  record.position = 4;  // 0-based
  record.mapq = 37;
  record.cigar = {AlignOp::kMatch, AlignOp::kMatch, AlignOp::kMatch,
                  AlignOp::kReadGap, AlignOp::kMatch};
  record.bases = encode_sequence("GGGGC");
  record.quals = {30, 30, 30, 30, 30};
  record.weight = 0.75;

  std::ostringstream out;
  write_sam_record(out, g, record);
  const std::string line = out.str();
  // QNAME FLAG RNAME POS(1-based) MAPQ CIGAR
  EXPECT_NE(line.find("read1\t16\tchrB\t5\t37\t3M1I1M\t"), std::string::npos);
  EXPECT_NE(line.find("GGGGC\t?????"), std::string::npos)
      << line;  // '?' is ASCII 63 = Q30 + 33
  EXPECT_NE(line.find("ZW:f:0.75"), std::string::npos);
}

TEST(SamWriter, UnmappedRecord) {
  const Genome g = two_contig_genome();
  SamRecord record;
  record.qname = "lost";
  record.flags = SamRecord::kUnmapped;
  record.bases = encode_sequence("ACGT");
  record.quals = {20, 20, 20, 20};
  std::ostringstream out;
  write_sam_record(out, g, record);
  const std::string line = out.str();
  EXPECT_NE(line.find("lost\t4\t*\t0\t0\t*\t"), std::string::npos);
}

TEST(SamExport, PerfectReadPrimaryAlignment) {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  const Genome genome = generate_reference(ref_options);

  PipelineConfig config;
  config.index.k = 9;
  const HashIndex index(genome, config.index);
  const ReadMapper mapper(genome, index, config);

  // A perfect read from a known position.
  const std::uint64_t origin = 12345;
  Read read;
  read.name = "perfect";
  for (int i = 0; i < 62; ++i) {
    read.bases.push_back(genome.at(origin + static_cast<std::uint64_t>(i)));
  }
  read.quals.assign(62, 40);

  MapperWorkspace ws;
  MapStats stats;
  const auto sites = mapper.score_read(read, ws, stats);
  ASSERT_FALSE(sites.empty());
  const auto records = to_sam_records(genome, read, sites, config);
  ASSERT_FALSE(records.empty());

  // Exactly one primary record, at the true origin, 62M.
  int primaries = 0;
  for (const auto& record : records) {
    if ((record.flags & SamRecord::kSecondary) == 0 &&
        (record.flags & SamRecord::kUnmapped) == 0) {
      ++primaries;
      EXPECT_EQ(record.position, origin);
      EXPECT_EQ(ops_to_cigar(record.cigar), "62M");
      EXPECT_GE(record.mapq, 30);
      EXPECT_NEAR(record.weight, 1.0, 1e-6);
    }
  }
  EXPECT_EQ(primaries, 1);
}

TEST(SamExport, MultimappedReadGetsSecondaryRecords) {
  // Two identical 500 bp copies: two records, one primary + one secondary,
  // each with weight ~0.5 and low MAPQ.
  Rng rng(99);
  std::string unit;
  for (int i = 0; i < 500; ++i) unit += "ACGT"[rng.next_below(4)];
  std::string filler;
  for (int i = 0; i < 1500; ++i) filler += "ACGT"[rng.next_below(4)];
  Genome genome;
  genome.add_contig("chr1", unit + filler + unit);

  PipelineConfig config;
  config.index.k = 9;
  const HashIndex index(genome, config.index);
  const ReadMapper mapper(genome, index, config);

  Read read;
  read.name = "dup";
  read.bases = encode_sequence(unit.substr(200, 62));
  read.quals.assign(62, 40);
  MapperWorkspace ws;
  MapStats stats;
  const auto sites = mapper.score_read(read, ws, stats);
  ASSERT_EQ(sites.size(), 2u);
  const auto records = to_sam_records(genome, read, sites, config);
  ASSERT_EQ(records.size(), 2u);

  int secondaries = 0;
  for (const auto& record : records) {
    EXPECT_NEAR(record.weight, 0.5, 0.05);
    EXPECT_LE(record.mapq, 5);
    secondaries += (record.flags & SamRecord::kSecondary) ? 1 : 0;
  }
  EXPECT_EQ(secondaries, 1);
}

TEST(SamExport, ReverseReadFlaggedAndOriented) {
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  ref_options.repeat_fraction = 0.0;
  ref_options.n_fraction = 0.0;
  const Genome genome = generate_reference(ref_options);

  PipelineConfig config;
  config.index.k = 9;
  const HashIndex index(genome, config.index);
  const ReadMapper mapper(genome, index, config);

  const std::uint64_t origin = 5000;
  std::vector<std::uint8_t> tmpl;
  for (int i = 0; i < 62; ++i) {
    tmpl.push_back(genome.at(origin + static_cast<std::uint64_t>(i)));
  }
  Read read;
  read.name = "rev";
  read.bases = reverse_complement(tmpl);
  read.quals.assign(62, 40);

  MapperWorkspace ws;
  MapStats stats;
  const auto sites = mapper.score_read(read, ws, stats);
  ASSERT_FALSE(sites.empty());
  const auto records = to_sam_records(genome, read, sites, config);
  ASSERT_FALSE(records.empty());
  const auto& primary = records.front();
  EXPECT_TRUE(primary.flags & SamRecord::kReverse);
  EXPECT_EQ(primary.position, origin);
  // SEQ is stored in alignment (forward-genome) orientation.
  EXPECT_EQ(primary.bases, tmpl);
}

TEST(SamExport, UnmappedReadRecord) {
  ReferenceGenOptions ref_options;
  ref_options.length = 20000;
  const Genome genome = generate_reference(ref_options);
  PipelineConfig config;
  config.index.k = 9;

  Read read;
  read.name = "junk";
  read.bases.assign(62, kBaseN);
  read.quals.assign(62, 2);
  const auto records = to_sam_records(genome, read, {}, config);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].flags & SamRecord::kUnmapped);
  EXPECT_EQ(records[0].qname, "junk");
}

TEST(SamExport, PipelineStreamsValidSam) {
  ReferenceGenOptions ref_options;
  ref_options.length = 30000;
  ref_options.n_fraction = 0.0;
  const Genome genome = generate_reference(ref_options);
  ReadSimOptions sim_options;
  sim_options.coverage = 2.0;
  const auto reads = strip_metadata(simulate_reads(genome, sim_options));

  PipelineConfig config;
  config.index.k = 9;
  std::ostringstream sam;
  run_pipeline_with_accumulator(genome, reads, config, nullptr, &sam);

  const std::string text = sam.str();
  EXPECT_NE(text.find("@HD"), std::string::npos);
  // One alignment line (at least) per read; count non-header lines.
  std::size_t lines = 0;
  for (const auto line : split(text, '\n')) {
    if (!line.empty() && line[0] != '@') ++lines;
  }
  EXPECT_GE(lines, reads.size());
}

}  // namespace
}  // namespace gnumap

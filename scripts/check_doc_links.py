#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Usage: check_doc_links.py [file-or-dir ...]

With no arguments, checks README.md, DESIGN.md, ROADMAP.md, and docs/*.md
relative to the repository root (the parent of this script's directory).

A link is checked when it is a standard inline markdown link whose target
is neither an absolute URL (http:, https:, mailto:) nor a pure in-page
anchor (#...).  The target is resolved relative to the file containing it;
a missing file — or, for `path#anchor` targets, a missing file before the
fragment — is reported and the script exits nonzero.  Anchors themselves
are not validated (section headings move too often for that to stay
useful), only the file part.
"""

import re
import sys
from pathlib import Path

# Inline links: [text](target).  Images ![alt](target) share the suffix so
# the same pattern picks them up.  Angle-bracketed targets <...> are
# unwrapped; titles ("...") are stripped.
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text):
    for match in LINK_RE.finditer(text):
        target = match.group(1).strip("<>")
        if not target or target.startswith(SKIP_PREFIXES):
            continue
        if target.startswith("#"):
            continue  # in-page anchor
        yield target.split("#", 1)[0], match.start()


def check_file(path):
    text = path.read_text(encoding="utf-8")
    broken = []
    for target, offset in iter_links(text):
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, offset) + 1
            broken.append((line, target))
    return broken


def main(argv):
    root = Path(__file__).resolve().parent.parent
    if argv:
        candidates = []
        for arg in argv:
            p = Path(arg)
            candidates.extend(sorted(p.glob("*.md")) if p.is_dir() else [p])
    else:
        candidates = [root / "README.md", root / "DESIGN.md",
                      root / "ROADMAP.md"]
        candidates.extend(sorted((root / "docs").glob("*.md")))

    failures = 0
    checked = 0
    for path in candidates:
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for line, target in check_file(path):
            print(f"{path}:{line}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"FAIL: {failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"ok: {checked} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Splice a gnumap client trace and a gnumapd server trace into one timeline.

Both sides export Chrome trace-event JSON (--trace-out), and protocol v3
propagates a 64-bit trace id from the client's MAP_BEGIN into the server's
serve_request span, so matching spans on the two sides carry the same
``args.trace_id`` hex string.  This script loads both files, pairs each
client ``map_request`` span with the server ``serve_request`` span sharing
its trace id, shifts the server's clock so the paired spans are
center-aligned, and writes a single Perfetto/chrome://tracing-loadable
file with the server's events on their own process row.

Clock caveat: the two processes do not share a trace epoch, so alignment
is a heuristic — the midpoint of the client's request span is mapped onto
the midpoint of the server's.  Network and queueing skew the edges by the
(sub-span) transfer times, which is fine for "where did the time go"
reading but is not a cross-host clock sync.

Usage:
    merge_traces.py client.trace.json server.trace.json -o merged.json

Exits 1 when no trace id is shared between the files (nothing to align).
Stdlib only.
"""

import argparse
import json
import sys

CLIENT_SPAN = "map_request"
SERVER_SPAN = "serve_request"
SERVER_PID = 2


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    if not isinstance(events, list):
        raise SystemExit(f"{path}: no traceEvents array")
    return doc, events


def spans_by_trace_id(events, name):
    """trace_id hex -> the (first) complete event of `name` carrying it."""
    spans = {}
    for event in events:
        if event.get("ph") != "X" or event.get("name") != name:
            continue
        trace_id = event.get("args", {}).get("trace_id")
        if trace_id:
            spans.setdefault(trace_id, event)
    return spans


def midpoint(event):
    return float(event["ts"]) + float(event.get("dur", 0.0)) / 2.0


def main():
    parser = argparse.ArgumentParser(
        description="merge client and server gnumap traces on trace ids")
    parser.add_argument("client_trace", help="gnumap_client --trace-out file")
    parser.add_argument("server_trace", help="gnumapd --trace-out file")
    parser.add_argument("-o", "--out", default="merged.trace.json",
                        help="merged trace path (default %(default)s)")
    args = parser.parse_args()

    client_doc, client_events = load_events(args.client_trace)
    _, server_events = load_events(args.server_trace)

    client_spans = spans_by_trace_id(client_events, CLIENT_SPAN)
    server_spans = spans_by_trace_id(server_events, SERVER_SPAN)
    shared = sorted(set(client_spans) & set(server_spans))
    if not shared:
        print(
            f"merge_traces: no shared trace id between {CLIENT_SPAN} spans "
            f"({len(client_spans)} found) and {SERVER_SPAN} spans "
            f"({len(server_spans)} found)", file=sys.stderr)
        return 1

    # One offset for the whole server file, averaged over every paired
    # request so multi-request traces do not privilege one pair.
    offsets = [
        midpoint(client_spans[tid]) - midpoint(server_spans[tid])
        for tid in shared
    ]
    offset = sum(offsets) / len(offsets)

    merged = [e for e in client_events]
    for event in server_events:
        shifted = dict(event)
        if "ts" in shifted:
            shifted["ts"] = float(shifted["ts"]) + offset
        shifted["pid"] = SERVER_PID
        merged.append(shifted)
    merged.append({
        "ph": "M", "name": "process_name", "pid": SERVER_PID, "tid": 0,
        "args": {"name": "gnumapd"},
    })

    out_doc = {"traceEvents": merged}
    if isinstance(client_doc, dict):
        for key, value in client_doc.items():
            if key != "traceEvents":
                out_doc[key] = value
    with open(args.out, "w") as f:
        json.dump(out_doc, f)
    print(f"merge_traces: {len(shared)} request(s) aligned "
          f"(offset {offset / 1e3:.3f} ms), wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

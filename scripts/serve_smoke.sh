#!/bin/sh
# End-to-end smoke test for the serving path: start gnumapd against a
# simulated workload, map the same reads through gnumap_client and the
# offline gnumap_snp_cli, and require byte-identical TSV and SAM outputs,
# then shut the server down gracefully and check it exits 0.
#
#   serve_smoke.sh SIM_CLI SNP_CLI GNUMAPD GNUMAP_CLIENT WORKDIR
set -eu

SIM_CLI=$1
SNP_CLI=$2
GNUMAPD=$3
CLIENT=$4
WORK=$5

rm -rf "$WORK"
mkdir -p "$WORK"

"$SIM_CLI" --out "$WORK/sim" --length 60000 --coverage 8

"$SNP_CLI" --ref "$WORK/sim/reference.fa" --reads "$WORK/sim/reads.fastq" \
  --out "$WORK/offline.tsv" --sam "$WORK/offline.sam" --threads 2 --quiet

"$GNUMAPD" --ref "$WORK/sim/reference.fa" --threads 2 \
  --port-file "$WORK/port" --quiet &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the port file (the index build happens before listening).
tries=0
while [ ! -s "$WORK/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 300 ]; then
    echo "serve_smoke: server never wrote its port file" >&2
    exit 1
  fi
  sleep 0.1
done

"$CLIENT" --port-file "$WORK/port" --reads "$WORK/sim/reads.fastq" \
  --out "$WORK/served.tsv" --sam "$WORK/served.sam" --quiet

cmp "$WORK/offline.tsv" "$WORK/served.tsv"
cmp "$WORK/offline.sam" "$WORK/served.sam"

"$CLIENT" --port-file "$WORK/port" --stats > "$WORK/stats.txt"
grep -q "^requests_total=" "$WORK/stats.txt"

"$CLIENT" --port-file "$WORK/port" --shutdown
wait "$SERVER_PID"
trap - EXIT

echo "serve_smoke: OK (served output byte-identical to offline CLI)"

#!/bin/sh
# End-to-end smoke test for the serving path: start gnumapd against a
# simulated workload, map the same reads through gnumap_client and the
# offline gnumap_snp_cli, and require byte-identical TSV and SAM outputs,
# then shut the server down gracefully and check it exits 0.  The server
# runs with its admin HTTP endpoint enabled, so the byte-identity checks
# double as "admin on changes nothing", and /healthz /metrics /statusz are
# validated over HTTP (python3 stdlib; skipped if python3 is missing).
#
# Fails fast: every client call runs under a hard deadline, and any
# timeout or mismatch dumps the server log before exiting, so a wedged
# run leaves a diagnosis instead of a hung CI job.  GNUMAP_WIRE_FAULT_PLAN
# is honoured by gnumapd, so the same script doubles as the chaos-matrix
# driver.
#
#   serve_smoke.sh SIM_CLI SNP_CLI GNUMAPD GNUMAP_CLIENT WORKDIR
set -eu

SIM_CLI=$1
SNP_CLI=$2
GNUMAPD=$3
CLIENT=$4
WORK=$5

# Bound every client transaction; generous, because CI machines are slow
# and a fault plan may be stalling the wire on purpose.
CLIENT_DEADLINE_MS=${SERVE_SMOKE_DEADLINE_MS:-120000}

rm -rf "$WORK"
mkdir -p "$WORK"

SERVER_PID=

dump_server_log() {
  if [ -s "$WORK/server.log" ]; then
    echo "serve_smoke: ---- server log ----" >&2
    cat "$WORK/server.log" >&2
    echo "serve_smoke: ---- end server log ----" >&2
  fi
}

fail() {
  echo "serve_smoke: $1" >&2
  dump_server_log
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}

"$SIM_CLI" --out "$WORK/sim" --length 60000 --coverage 8

"$SNP_CLI" --ref "$WORK/sim/reference.fa" --reads "$WORK/sim/reads.fastq" \
  --out "$WORK/offline.tsv" --sam "$WORK/offline.sam" --threads 2 --quiet

"$GNUMAPD" --ref "$WORK/sim/reference.fa" --threads 2 \
  --port-file "$WORK/port" \
  --admin-port 0 --admin-port-file "$WORK/admin_port" \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the port file (the index build happens before listening).
tries=0
while [ ! -s "$WORK/port" ]; do
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died before listening"
  tries=$((tries + 1))
  if [ "$tries" -gt 300 ]; then
    fail "server never wrote its port file (timed out after 30 s)"
  fi
  sleep 0.1
done

"$CLIENT" --port-file "$WORK/port" --reads "$WORK/sim/reads.fastq" \
  --out "$WORK/served.tsv" --sam "$WORK/served.sam" \
  --deadline-ms "$CLIENT_DEADLINE_MS" --connect-retries 5 --quiet \
  || fail "map request failed"

cmp "$WORK/offline.tsv" "$WORK/served.tsv" \
  || fail "served TSV differs from the offline CLI"
cmp "$WORK/offline.sam" "$WORK/served.sam" \
  || fail "served SAM differs from the offline CLI"

"$CLIENT" --port-file "$WORK/port" --health > "$WORK/health.txt" \
  || fail "HEALTH probe failed"
grep -q "^ready=1" "$WORK/health.txt" || fail "server not ready after a map"

"$CLIENT" --port-file "$WORK/port" --stats > "$WORK/stats.txt" \
  || fail "STATS probe failed"
grep -q "^requests_total=" "$WORK/stats.txt" || fail "stats missing counters"
grep -q "^digest_requests=" "$WORK/stats.txt" \
  || fail "stats missing the request-digest counters"

# Admin HTTP endpoint: /healthz, /metrics, and /statusz must answer and
# reflect the request that just ran.
if command -v python3 > /dev/null 2>&1; then
  ADMIN_PORT=$(cat "$WORK/admin_port")
  python3 - "$ADMIN_PORT" <<'EOF' || fail "admin endpoint validation failed"
import json, sys, urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"

health = urllib.request.urlopen(f"{base}/healthz", timeout=10).read().decode()
assert health.startswith("ready=1"), f"/healthz not ready:\n{health}"

metrics = urllib.request.urlopen(f"{base}/metrics", timeout=10).read().decode()
assert "# TYPE gnumap_serve_requests_total counter" in metrics, metrics[:400]
assert any(
    line.startswith("gnumap_serve_requests_total ")
    and float(line.split()[1]) >= 1
    for line in metrics.splitlines()
), "/metrics does not count the completed request"

status = json.load(urllib.request.urlopen(f"{base}/statusz", timeout=10))
assert status["counters"]["requests_total"] >= 1, status
assert status["session"]["genome_bases"] > 0, status
assert status["digests"]["recorded"] >= 1, status

tracez = json.load(urllib.request.urlopen(f"{base}/tracez", timeout=10))
assert tracez["slowest_recent_requests"], tracez
print("serve_smoke: admin endpoint OK")
EOF
else
  echo "serve_smoke: python3 not found, skipping admin endpoint checks" >&2
fi

"$CLIENT" --port-file "$WORK/port" --shutdown || fail "SHUTDOWN failed"
wait "$SERVER_PID" || fail "server exited nonzero after drain"
SERVER_PID=
trap - EXIT

echo "serve_smoke: OK (served output byte-identical to offline CLI)"

#!/bin/sh
# End-to-end smoke test for the serving path: start gnumapd against a
# simulated workload, map the same reads through gnumap_client and the
# offline gnumap_snp_cli, and require byte-identical TSV and SAM outputs,
# then shut the server down gracefully and check it exits 0.  The server
# runs with its admin HTTP endpoint enabled, so the byte-identity checks
# double as "admin on changes nothing", and /healthz /metrics /statusz are
# validated over HTTP (python3 stdlib; skipped if python3 is missing).
#
# Fails fast: every client call runs under a hard deadline, and any
# timeout or mismatch dumps the server log before exiting, so a wedged
# run leaves a diagnosis instead of a hung CI job.  GNUMAP_WIRE_FAULT_PLAN
# is honoured by gnumapd, so the same script doubles as the chaos-matrix
# driver.
#
# With a sixth argument (the gnumap_index binary) the script also runs the
# fleet legs: a cold mmap instant-start drill (build the index file, start
# a daemon from it, require byte-identical output and a >=10x
# load-vs-rebuild speedup via bench_compare.py --startup), and a
# scatter/gather router over two shard daemons whose output must be
# byte-identical to the single daemon's.
#
#   serve_smoke.sh SIM_CLI SNP_CLI GNUMAPD GNUMAP_CLIENT WORKDIR [GNUMAP_INDEX]
set -eu

SIM_CLI=$1
SNP_CLI=$2
GNUMAPD=$3
CLIENT=$4
WORK=$5
INDEX_CLI=${6:-}

# Bound every client transaction; generous, because CI machines are slow
# and a fault plan may be stalling the wire on purpose.
CLIENT_DEADLINE_MS=${SERVE_SMOKE_DEADLINE_MS:-120000}

rm -rf "$WORK"
mkdir -p "$WORK"

SERVER_PID=
EXTRA_PIDS=

dump_server_log() {
  for log in "$WORK/server.log" "$WORK/cold.log" "$WORK/shard0.log" \
             "$WORK/shard1.log" "$WORK/router.log"; do
    if [ -s "$log" ]; then
      echo "serve_smoke: ---- $(basename "$log") ----" >&2
      cat "$log" >&2
      echo "serve_smoke: ---- end $(basename "$log") ----" >&2
    fi
  done
}

kill_all() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  for pid in $EXTRA_PIDS; do
    kill "$pid" 2>/dev/null || true
  done
}

fail() {
  echo "serve_smoke: $1" >&2
  dump_server_log
  kill_all
  exit 1
}

# Waits for a daemon to publish its port file (index build/load happens
# before listening).
wait_port() {
  port_file=$1
  pid=$2
  name=$3
  tries=0
  while [ ! -s "$port_file" ]; do
    kill -0 "$pid" 2>/dev/null || fail "$name died before listening"
    tries=$((tries + 1))
    if [ "$tries" -gt 300 ]; then
      fail "$name never wrote its port file (timed out after 30 s)"
    fi
    sleep 0.1
  done
}

"$SIM_CLI" --out "$WORK/sim" --length 60000 --coverage 8

"$SNP_CLI" --ref "$WORK/sim/reference.fa" --reads "$WORK/sim/reads.fastq" \
  --out "$WORK/offline.tsv" --sam "$WORK/offline.sam" --threads 2 --quiet

"$GNUMAPD" --ref "$WORK/sim/reference.fa" --threads 2 \
  --port-file "$WORK/port" \
  --admin-port 0 --admin-port-file "$WORK/admin_port" \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
trap kill_all EXIT

wait_port "$WORK/port" "$SERVER_PID" "server"

"$CLIENT" --port-file "$WORK/port" --reads "$WORK/sim/reads.fastq" \
  --out "$WORK/served.tsv" --sam "$WORK/served.sam" \
  --deadline-ms "$CLIENT_DEADLINE_MS" --connect-retries 5 --quiet \
  || fail "map request failed"

cmp "$WORK/offline.tsv" "$WORK/served.tsv" \
  || fail "served TSV differs from the offline CLI"
cmp "$WORK/offline.sam" "$WORK/served.sam" \
  || fail "served SAM differs from the offline CLI"

"$CLIENT" --port-file "$WORK/port" --health > "$WORK/health.txt" \
  || fail "HEALTH probe failed"
grep -q "^ready=1" "$WORK/health.txt" || fail "server not ready after a map"

"$CLIENT" --port-file "$WORK/port" --stats > "$WORK/stats.txt" \
  || fail "STATS probe failed"
grep -q "^requests_total=" "$WORK/stats.txt" || fail "stats missing counters"
grep -q "^digest_requests=" "$WORK/stats.txt" \
  || fail "stats missing the request-digest counters"

# Admin HTTP endpoint: /healthz, /metrics, and /statusz must answer and
# reflect the request that just ran.
if command -v python3 > /dev/null 2>&1; then
  ADMIN_PORT=$(cat "$WORK/admin_port")
  python3 - "$ADMIN_PORT" <<'EOF' || fail "admin endpoint validation failed"
import json, sys, urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"

health = urllib.request.urlopen(f"{base}/healthz", timeout=10).read().decode()
assert health.startswith("ready=1"), f"/healthz not ready:\n{health}"

metrics = urllib.request.urlopen(f"{base}/metrics", timeout=10).read().decode()
assert "# TYPE gnumap_serve_requests_total counter" in metrics, metrics[:400]
assert any(
    line.startswith("gnumap_serve_requests_total ")
    and float(line.split()[1]) >= 1
    for line in metrics.splitlines()
), "/metrics does not count the completed request"

status = json.load(urllib.request.urlopen(f"{base}/statusz", timeout=10))
assert status["counters"]["requests_total"] >= 1, status
assert status["session"]["genome_bases"] > 0, status
assert status["digests"]["recorded"] >= 1, status

tracez = json.load(urllib.request.urlopen(f"{base}/tracez", timeout=10))
assert tracez["slowest_recent_requests"], tracez
print("serve_smoke: admin endpoint OK")
EOF
else
  echo "serve_smoke: python3 not found, skipping admin endpoint checks" >&2
fi

"$CLIENT" --port-file "$WORK/port" --shutdown || fail "SHUTDOWN failed"
wait "$SERVER_PID" || fail "server exited nonzero after drain"
SERVER_PID=

if [ -n "$INDEX_CLI" ]; then
  # ---- Fleet leg 1: cold mmap instant start -------------------------------
  # Build the index file offline, start a daemon that mmap()s it, and
  # require the same bytes as the offline CLI plus a >=10x load-vs-rebuild
  # speedup (the contract the file format exists to honour).
  "$INDEX_CLI" --ref "$WORK/sim/reference.fa" --out "$WORK/genome.gidx" \
    --verify --startup-json "$WORK/startup.json" --quiet \
    || fail "gnumap_index failed to build the fleet index file"

  "$GNUMAPD" --index "$WORK/genome.gidx" --threads 2 \
    --port-file "$WORK/cold_port" > "$WORK/cold.log" 2>&1 &
  SERVER_PID=$!
  wait_port "$WORK/cold_port" "$SERVER_PID" "cold-start server"

  "$CLIENT" --port-file "$WORK/cold_port" --reads "$WORK/sim/reads.fastq" \
    --out "$WORK/cold.tsv" --sam "$WORK/cold.sam" \
    --deadline-ms "$CLIENT_DEADLINE_MS" --connect-retries 5 --quiet \
    || fail "map request against the mmap'ed index failed"
  cmp "$WORK/offline.tsv" "$WORK/cold.tsv" \
    || fail "mmap'ed-index TSV differs from the offline CLI"
  cmp "$WORK/offline.sam" "$WORK/cold.sam" \
    || fail "mmap'ed-index SAM differs from the offline CLI"

  "$CLIENT" --port-file "$WORK/cold_port" --stats > "$WORK/cold_stats.txt" \
    || fail "STATS probe on the cold-start server failed"
  grep -q "^registry_genomes=" "$WORK/cold_stats.txt" \
    || fail "cold-start stats missing the registry counters"
  grep -q "^index_load_seconds=" "$WORK/cold_stats.txt" \
    || fail "cold-start stats missing index_load_seconds"

  "$CLIENT" --port-file "$WORK/cold_port" --shutdown \
    || fail "cold-start SHUTDOWN failed"
  wait "$SERVER_PID" || fail "cold-start server exited nonzero after drain"
  SERVER_PID=

  if command -v python3 > /dev/null 2>&1; then
    python3 "$(dirname "$0")/bench_compare.py" "$WORK/startup.json" \
      --startup || fail "instant-start speedup gate failed"
  else
    echo "serve_smoke: python3 not found, skipping the startup gate" >&2
  fi

  # ---- Fleet leg 2: scatter/gather router over two shards -----------------
  # Two daemons each own half the genome; the router fans every chunk out,
  # gathers per-shard partials, and must reproduce the single daemon's
  # output byte for byte.
  "$GNUMAPD" --ref "$WORK/sim/reference.fa" --shard 0/2 --threads 2 \
    --port-file "$WORK/shard0_port" > "$WORK/shard0.log" 2>&1 &
  SHARD0_PID=$!
  EXTRA_PIDS="$EXTRA_PIDS $SHARD0_PID"
  "$GNUMAPD" --ref "$WORK/sim/reference.fa" --shard 1/2 --threads 2 \
    --port-file "$WORK/shard1_port" > "$WORK/shard1.log" 2>&1 &
  SHARD1_PID=$!
  EXTRA_PIDS="$EXTRA_PIDS $SHARD1_PID"
  wait_port "$WORK/shard0_port" "$SHARD0_PID" "shard 0"
  wait_port "$WORK/shard1_port" "$SHARD1_PID" "shard 1"

  "$GNUMAPD" --ref "$WORK/sim/reference.fa" \
    --route "127.0.0.1:$(cat "$WORK/shard0_port"),127.0.0.1:$(cat "$WORK/shard1_port")" \
    --port-file "$WORK/router_port" > "$WORK/router.log" 2>&1 &
  ROUTER_PID=$!
  EXTRA_PIDS="$EXTRA_PIDS $ROUTER_PID"
  wait_port "$WORK/router_port" "$ROUTER_PID" "router"

  "$CLIENT" --port-file "$WORK/router_port" --reads "$WORK/sim/reads.fastq" \
    --out "$WORK/routed.tsv" --sam "$WORK/routed.sam" \
    --deadline-ms "$CLIENT_DEADLINE_MS" --connect-retries 5 --quiet \
    || fail "map request through the router failed"
  cmp "$WORK/served.tsv" "$WORK/routed.tsv" \
    || fail "router TSV differs from the single daemon"
  cmp "$WORK/served.sam" "$WORK/routed.sam" \
    || fail "router SAM differs from the single daemon"

  kill_all
  EXTRA_PIDS=
  echo "serve_smoke: fleet legs OK (cold start and router byte-identical)"
fi

trap - EXIT

echo "serve_smoke: OK (served output byte-identical to offline CLI)"

#!/usr/bin/env python3
"""Compare a fresh PHMM bench run against the committed baseline.

Guards the kernel's throughput in CI: a fresh google-benchmark JSON (the
bench-smoke leg runs bench_ablation_phmm with --benchmark_out) is compared
row-by-row against the committed BENCH_phmm.json, and any benchmark whose
``gcups`` counter regressed by more than the threshold fails the run.

Only rows present in BOTH files are compared (a renamed or added benchmark
is reported, not fatal — the committed baseline trails new code by design).
Rows without a gcups counter (e.g. the scalar BM_ForwardBackward family)
are skipped.  Context drift (build type, cpu count) is printed so a
"regression" on noisy shared hardware is diagnosable at a glance.

Usage:
    bench_compare.py fresh.json [--baseline BENCH_phmm.json]
                     [--threshold 0.15]

The threshold is a fraction (0.15 = fail below 85% of baseline GCUPS); the
GNUMAP_BENCH_THRESHOLD environment variable overrides the default, the
flag overrides both.  Re-baselining after an intentional change is just
committing the fresh file as BENCH_phmm.json (see docs/OBSERVABILITY.md).

Stdlib only.  Exit codes: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "gcups" in bench:
            rows[bench["name"]] = float(bench["gcups"])
    return doc.get("context", {}), rows


def main():
    parser = argparse.ArgumentParser(
        description="fail on PHMM GCUPS regressions vs the committed baseline")
    parser.add_argument("fresh", help="fresh --benchmark_out JSON")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "BENCH_phmm.json"),
        help="committed baseline (default: repo BENCH_phmm.json)")
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("GNUMAP_BENCH_THRESHOLD", "0.15")),
        help="max tolerated fractional GCUPS drop (default %(default)s, "
             "or GNUMAP_BENCH_THRESHOLD)")
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        print("bench_compare: --threshold must be in (0, 1)", file=sys.stderr)
        return 2

    base_ctx, base = load_rows(args.baseline)
    fresh_ctx, fresh = load_rows(args.fresh)
    if not base or not fresh:
        print("bench_compare: no gcups rows to compare", file=sys.stderr)
        return 2

    for key in ("library_build_type", "num_cpus", "host_name"):
        if base_ctx.get(key) != fresh_ctx.get(key):
            print(f"bench_compare: context drift: {key} baseline="
                  f"{base_ctx.get(key)!r} fresh={fresh_ctx.get(key)!r}")

    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    for name in only_base:
        print(f"bench_compare: note: baseline-only row {name} (skipped)")
    for name in only_fresh:
        print(f"bench_compare: note: new row {name} (no baseline yet)")

    regressions = []
    for name in sorted(set(base) & set(fresh)):
        base_gcups, fresh_gcups = base[name], fresh[name]
        if base_gcups <= 0.0:
            continue
        change = fresh_gcups / base_gcups - 1.0
        marker = ""
        if change < -args.threshold:
            regressions.append(name)
            marker = "  <-- REGRESSION"
        print(f"bench_compare: {name}: {base_gcups:.4f} -> "
              f"{fresh_gcups:.4f} GCUPS ({change:+.1%}){marker}")

    if regressions:
        print(f"bench_compare: FAIL: {len(regressions)} row(s) regressed "
              f"more than {args.threshold:.0%}; if intentional, re-baseline "
              f"by committing the fresh JSON as {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(set(base) & set(fresh))} rows within "
          f"{args.threshold:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

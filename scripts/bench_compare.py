#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

Guards two throughput surfaces in CI:

* PHMM kernel (default): a fresh google-benchmark JSON (the bench-smoke leg
  runs bench_ablation_phmm with --benchmark_out) is compared row-by-row
  against the committed BENCH_phmm.json, and any benchmark whose ``gcups``
  counter regressed by more than the threshold fails the run.

* Pipeline (--pipeline): a fresh BENCH_pipeline.json (written by
  bench_pipeline_stream) is compared on ``reads_per_sec``, covering both
  the monolithic-vs-streaming ``runs`` rows and the ``drain_scaling`` rows
  (threads x legacy-drain/worker-format).

* Fleet startup (--startup): the JSON written by ``gnumap_index
  --startup-json`` is gated on its own two timings, no committed baseline:
  the mmap instant-start load must be at least ``--startup-factor`` times
  faster than rebuilding the index from FASTA (default 10x, or the
  GNUMAP_STARTUP_FACTOR environment variable).  This is the contract the
  fleet index file exists to honour — a cold gnumapd restart costing a
  rebuild is a regression even when every throughput row is green.

Only rows present in BOTH files are compared (a renamed or added benchmark
is reported, not fatal — the committed baseline trails new code by design).
Rows without the compared counter are skipped.  Context drift (build type,
cpu count, workload shape) is printed so a "regression" on noisy shared
hardware is diagnosable at a glance.

Usage:
    bench_compare.py fresh.json [--baseline BENCH_phmm.json]
                     [--threshold 0.15] [--pipeline]

The threshold is a fraction (0.15 = fail below 85% of baseline); the
GNUMAP_BENCH_THRESHOLD environment variable overrides the default, the
flag overrides both.  Re-baselining after an intentional change is just
committing the fresh file as the baseline (see docs/OBSERVABILITY.md).

Stdlib only.  Exit codes: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_phmm_rows(path):
    doc = load_json(path)
    rows = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "gcups" in bench:
            rows[bench["name"]] = float(bench["gcups"])
    return doc.get("context", {}), rows


def load_pipeline_rows(path):
    doc = load_json(path)
    rows = {}
    for run in doc.get("runs", []):
        key = f"{run.get('mode')}/r{run.get('reads')}"
        if "reads_per_sec" in run:
            rows[key] = float(run["reads_per_sec"])
    for run in doc.get("drain_scaling", []):
        key = f"drain_scaling/t{run.get('threads')}/{run.get('mode')}"
        if "reads_per_sec" in run:
            rows[key] = float(run["reads_per_sec"])
    context = {k: doc.get(k)
               for k in ("genome_bp", "threads", "stream_batch",
                         "queue_depth")}
    return context, rows


def check_startup(path, factor):
    doc = load_json(path)
    build = doc.get("build_seconds")
    load = doc.get("load_seconds")
    if not isinstance(build, (int, float)) or not isinstance(
            load, (int, float)) or build <= 0.0 or load < 0.0:
        print(f"bench_compare: {path} has no usable build_seconds/"
              f"load_seconds", file=sys.stderr)
        return 2
    speedup = build / load if load > 0.0 else float("inf")
    detail = (f"build {build:.4f}s vs mmap load {load:.6f}s "
              f"({speedup:.1f}x, need >={factor:.1f}x; "
              f"file_bytes={doc.get('file_bytes')}, "
              f"index_entries={doc.get('index_entries')})")
    if speedup < factor:
        print(f"bench_compare: FAIL: instant start too slow: {detail}",
              file=sys.stderr)
        return 1
    print(f"bench_compare: OK: {detail}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="fail on bench throughput regressions vs the committed "
                    "baseline")
    parser.add_argument("fresh", help="fresh bench JSON")
    parser.add_argument(
        "--baseline", default=None,
        help="committed baseline (default: repo BENCH_phmm.json, or "
             "BENCH_pipeline.json with --pipeline)")
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("GNUMAP_BENCH_THRESHOLD", "0.15")),
        help="max tolerated fractional drop (default %(default)s, "
             "or GNUMAP_BENCH_THRESHOLD)")
    parser.add_argument(
        "--pipeline", action="store_true",
        help="compare BENCH_pipeline.json reads_per_sec rows instead of "
             "google-benchmark gcups rows")
    parser.add_argument(
        "--startup", action="store_true",
        help="gate a gnumap_index --startup-json file: mmap load must be "
             "--startup-factor times faster than the index rebuild")
    parser.add_argument(
        "--startup-factor", type=float,
        default=float(os.environ.get("GNUMAP_STARTUP_FACTOR", "10")),
        help="required build/load speedup with --startup (default "
             "%(default)s, or GNUMAP_STARTUP_FACTOR)")
    args = parser.parse_args()
    if args.startup:
        if args.startup_factor <= 1.0:
            print("bench_compare: --startup-factor must be > 1",
                  file=sys.stderr)
            return 2
        return check_startup(args.fresh, args.startup_factor)
    if not 0.0 < args.threshold < 1.0:
        print("bench_compare: --threshold must be in (0, 1)", file=sys.stderr)
        return 2

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.baseline is None:
        name = "BENCH_pipeline.json" if args.pipeline else "BENCH_phmm.json"
        args.baseline = os.path.join(repo, name)
    load_rows = load_pipeline_rows if args.pipeline else load_phmm_rows
    unit = "reads/s" if args.pipeline else "GCUPS"

    base_ctx, base = load_rows(args.baseline)
    fresh_ctx, fresh = load_rows(args.fresh)
    if not base or not fresh:
        print(f"bench_compare: no {unit} rows to compare", file=sys.stderr)
        return 2

    drift_keys = (("genome_bp", "threads", "stream_batch", "queue_depth")
                  if args.pipeline
                  else ("library_build_type", "num_cpus", "host_name"))
    for key in drift_keys:
        if base_ctx.get(key) != fresh_ctx.get(key):
            print(f"bench_compare: context drift: {key} baseline="
                  f"{base_ctx.get(key)!r} fresh={fresh_ctx.get(key)!r}")

    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    for name in only_base:
        print(f"bench_compare: note: baseline-only row {name} (skipped)")
    for name in only_fresh:
        print(f"bench_compare: note: new row {name} (no baseline yet)")

    regressions = []
    for name in sorted(set(base) & set(fresh)):
        base_val, fresh_val = base[name], fresh[name]
        if base_val <= 0.0:
            continue
        change = fresh_val / base_val - 1.0
        marker = ""
        if change < -args.threshold:
            regressions.append(name)
            marker = "  <-- REGRESSION"
        print(f"bench_compare: {name}: {base_val:.4f} -> "
              f"{fresh_val:.4f} {unit} ({change:+.1%}){marker}")

    if regressions:
        print(f"bench_compare: FAIL: {len(regressions)} row(s) regressed "
              f"more than {args.threshold:.0%}; if intentional, re-baseline "
              f"by committing the fresh JSON as {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(set(base) & set(fresh))} rows within "
          f"{args.threshold:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/bin/sh
# Graceful-drain test for gnumapd: SIGTERM lands while a MAP request's
# upload is still in flight (fed through a FIFO so the timing is under our
# control).  The contract: the admitted request either runs to completion
# with byte-identical output or the client sees a typed error — never a
# bare connection reset — and the server itself always drains and exits 0.
# The drain must also flush the observability artifacts: gnumapd runs with
# --trace-out/--metrics-out, and both files must exist non-empty after the
# SIGTERM drain (the signal path may not skip the atexit flush).
#
#   serve_drain.sh SIM_CLI SNP_CLI GNUMAPD GNUMAP_CLIENT WORKDIR
set -eu

SIM_CLI=$1
SNP_CLI=$2
GNUMAPD=$3
CLIENT=$4
WORK=$5

rm -rf "$WORK"
mkdir -p "$WORK"

SERVER_PID=

dump_server_log() {
  if [ -s "$WORK/server.log" ]; then
    echo "serve_drain: ---- server log ----" >&2
    cat "$WORK/server.log" >&2
    echo "serve_drain: ---- end server log ----" >&2
  fi
}

fail() {
  echo "serve_drain: $1" >&2
  dump_server_log
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}

"$SIM_CLI" --out "$WORK/sim" --length 60000 --coverage 8

"$SNP_CLI" --ref "$WORK/sim/reference.fa" --reads "$WORK/sim/reads.fastq" \
  --out "$WORK/offline.tsv" --threads 2 --quiet

"$GNUMAPD" --ref "$WORK/sim/reference.fa" --threads 2 \
  --port-file "$WORK/port" \
  --trace-out "$WORK/server.trace.json" \
  --metrics-out "$WORK/server.metrics.json" > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

tries=0
while [ ! -s "$WORK/port" ]; do
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died before listening"
  tries=$((tries + 1))
  [ "$tries" -gt 300 ] && fail "server never wrote its port file"
  sleep 0.1
done

# Feed the upload through a FIFO: write half the reads, SIGTERM the server
# mid-request, then finish the upload.
mkfifo "$WORK/reads.fifo"
FASTQ="$WORK/sim/reads.fastq"
TOTAL_LINES=$(wc -l < "$FASTQ")
# First half, rounded down to a 4-line FASTQ record boundary.
HALF_LINES=$(( (TOTAL_LINES / 2) / 4 * 4 ))

"$CLIENT" --port-file "$WORK/port" --reads "$WORK/reads.fifo" \
  --out "$WORK/served.tsv" --deadline-ms 120000 --quiet \
  > "$WORK/client.log" 2>&1 &
CLIENT_PID=$!

{
  head -n "$HALF_LINES" "$FASTQ"
  # Let the half-upload reach the server before the drain begins.
  sleep 1
  kill -TERM "$SERVER_PID"
  sleep 0.5
  tail -n +"$((HALF_LINES + 1))" "$FASTQ"
} > "$WORK/reads.fifo"

CLIENT_STATUS=0
wait "$CLIENT_PID" || CLIENT_STATUS=$?

# The server must exit 0 through its normal drain path, SIGTERM or not.
wait "$SERVER_PID" || fail "server exited nonzero after SIGTERM drain"
SERVER_PID=
trap - EXIT

# The drain path must still flush the observability artifacts.
[ -s "$WORK/server.trace.json" ] \
  || fail "SIGTERM drain lost the --trace-out artifact"
[ -s "$WORK/server.metrics.json" ] \
  || fail "SIGTERM drain lost the --metrics-out artifact"

if [ "$CLIENT_STATUS" -eq 0 ]; then
  # The admitted request ran to completion during the drain: its bytes
  # must still match the offline pipeline.
  cmp "$WORK/offline.tsv" "$WORK/served.tsv" \
    || fail "drained request completed but output differs from offline CLI"
  echo "serve_drain: OK (in-flight request completed byte-identical)"
elif [ "$CLIENT_STATUS" -ge 126 ]; then
  # 126+/128+n means crashed or signalled — a bare reset, not a typed error.
  dump_server_log
  cat "$WORK/client.log" >&2 || true
  fail "client died abnormally (status $CLIENT_STATUS) instead of a typed error"
else
  # Nonzero but orderly: must carry a typed gnumap_client error message.
  grep -q "^gnumap_client: " "$WORK/client.log" \
    || fail "client failed (status $CLIENT_STATUS) without a typed error message"
  echo "serve_drain: OK (in-flight request got a typed error during drain)"
fi
